package kgserve

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nexus/internal/kg"
	"nexus/internal/kgwire"
)

func testGraph() *kg.Graph {
	g := kg.NewGraph()
	de := g.AddEntity("Germany", "Country")
	g.Set(de, "HDI", kg.Num(0.94))
	return g
}

func post(t *testing.T, hs *httptest.Server, path, body string) (int, string) {
	t.Helper()
	resp, err := hs.Client().Post(hs.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// TestFaultInjectionDeterministic pins that two servers with the same seed
// fail the same request positions — the property the acceptance test's
// reproducible fail-rate runs depend on.
func TestFaultInjectionDeterministic(t *testing.T) {
	pattern := func(seed uint64) string {
		srv := New(Config{Source: testGraph(), FailRate: 0.4, Seed: seed})
		hs := httptest.NewServer(srv.Handler())
		defer hs.Close()
		var sb strings.Builder
		for i := 0; i < 40; i++ {
			code, _ := post(t, hs, kgwire.PathResolve, `{"values":["Germany"]}`)
			if code == 500 {
				sb.WriteByte('x')
			} else {
				sb.WriteByte('.')
			}
		}
		return sb.String()
	}
	a, b := pattern(9), pattern(9)
	if a != b {
		t.Fatalf("same seed, different fault patterns:\n%s\n%s", a, b)
	}
	if !strings.Contains(a, "x") || !strings.Contains(a, ".") {
		t.Fatalf("fail-rate 0.4 produced degenerate pattern %s", a)
	}
	if pattern(10) == a {
		t.Fatal("different seeds produced identical fault patterns")
	}
}

// TestHealthzNeverInjected pins that liveness checks bypass fault
// injection and latency.
func TestHealthzNeverInjected(t *testing.T) {
	srv := New(Config{Source: testGraph(), FailRate: 0.99, Latency: time.Hour, Seed: 1})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	for i := 0; i < 5; i++ {
		resp, err := hs.Client().Get(hs.URL + kgwire.PathHealthz)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("healthz = %d", resp.StatusCode)
		}
	}
}

// TestStatsEndpoint pins request counting and injected-fault reporting.
func TestStatsEndpoint(t *testing.T) {
	srv := New(Config{Source: testGraph()})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	for i := 0; i < 3; i++ {
		if code, body := post(t, hs, kgwire.PathResolve, `{"values":["Germany"]}`); code != 200 {
			t.Fatalf("resolve = %d %s", code, body)
		}
	}
	resp, err := hs.Client().Get(hs.URL + kgwire.PathStats)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats kgwire.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Requests[kgwire.PathResolve] != 3 || stats.Injected != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

// TestMalformedAndOversizedRequests pins the 400 (never retried) error
// class: bad JSON, oversized batches, unknown ids.
func TestMalformedAndOversizedRequests(t *testing.T) {
	srv := New(Config{Source: testGraph(), MaxBatch: 2})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	if code, _ := post(t, hs, kgwire.PathResolve, `{bad json`); code != 400 {
		t.Fatalf("malformed body = %d, want 400", code)
	}
	if code, body := post(t, hs, kgwire.PathEntities, `{"ids":[0,0,0]}`); code != 400 || !strings.Contains(body, "exceeds limit") {
		t.Fatalf("oversized batch = %d %s", code, body)
	}
	if code, _ := post(t, hs, kgwire.PathEntities, `{"ids":[42]}`); code != 400 {
		t.Fatalf("unknown id = %d, want 400", code)
	}
}
