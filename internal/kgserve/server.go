// Package kgserve exposes any kg.Source over the kgwire HTTP protocol —
// the server half of the remote knowledge-graph backend (cmd/kgd is the
// binary wrapper). Each endpoint decodes a batch request, answers it from
// the wrapped source, and replies with index-aligned JSON.
//
// For resilience testing the server injects faults on demand: FailRate is
// the probability that a request is rejected with HTTP 500 before touching
// the source, and Latency is a fixed artificial delay per request (both
// applied to the /kg/v1/ endpoints only — /healthz is always honest). The
// fault RNG is seeded, so a given request sequence fails deterministically.
package kgserve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"nexus/internal/httpdebug"
	"nexus/internal/kg"
	"nexus/internal/kgwire"
	"nexus/internal/obs"
	"nexus/internal/stats"
)

// CtrInjected counts injected faults on the registry's counter set
// (exposed as kgd_faults_injected_total on /metrics).
const CtrInjected = "faults_injected"

// Config configures a Server.
type Config struct {
	// Source is the knowledge graph to serve. Required.
	Source kg.Source
	// FailRate is the probability in [0,1) that a /kg/v1/ request is
	// rejected with HTTP 500 before reaching the source.
	FailRate float64
	// Latency is an artificial delay added to every /kg/v1/ request
	// (cancelled early if the client gives up).
	Latency time.Duration
	// Seed seeds the fault-injection RNG (default 1): the same request
	// sequence sees the same fault sequence.
	Seed uint64
	// MaxBatch rejects oversized batch requests with 400 (default 65536).
	MaxBatch int
	// Registry collects serving metrics for GET /metrics: request latency
	// by route and outcome, an in-flight gauge, and the fault counter. Nil
	// builds a private registry, so /metrics is always available.
	Registry *obs.Registry
	// SlowThreshold enables slow-request capture (GET /debug/slow, SIGQUIT
	// dump in cmd/kgd): requests at or over the threshold compete for the
	// SlowKeep (default 32) slowest slots. Zero disables capture.
	SlowThreshold time.Duration
	SlowKeep      int
}

// Server handles the kgwire endpoints. Construct with New.
type Server struct {
	cfg      Config
	registry *obs.Registry
	slow     *obs.SlowLog
	inFlight *obs.Gauge

	mu  sync.Mutex // guards rng
	rng *stats.RNG

	injected atomic.Int64
	reqs     sync.Map // path → *atomic.Int64
}

// New returns a server for cfg.Source.
func New(cfg Config) *Server {
	if cfg.Source == nil {
		panic("kgserve: Config.Source is required")
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 65536
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry(nil)
	}
	if cfg.SlowKeep <= 0 {
		cfg.SlowKeep = 32
	}
	return &Server{
		cfg:      cfg,
		registry: cfg.Registry,
		slow:     obs.NewSlowLog(cfg.SlowThreshold, cfg.SlowKeep),
		inFlight: cfg.Registry.Gauge("requests_in_flight"),
		rng:      stats.NewRNG(cfg.Seed),
	}
}

// Registry exposes the server's metric registry (rendered at /metrics).
func (s *Server) Registry() *obs.Registry { return s.registry }

// SlowLog exposes the slow-request capture (nil when disabled), e.g. for
// cmd/kgd's SIGQUIT dump.
func (s *Server) SlowLog() *obs.SlowLog { return s.slow }

// Handler returns the HTTP handler serving the kgwire protocol. Every
// route — including /metrics itself — is wrapped in the request-latency
// middleware, so http_request_seconds{route,outcome} covers the surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern, label string, h http.HandlerFunc) {
		mux.Handle(pattern, httpdebug.Instrument(s.registry, "http_request_seconds", label, s.observe(h)))
	}
	route("POST "+kgwire.PathResolve, "resolve", fault(s, s.handleResolve))
	route("POST "+kgwire.PathEntities, "entities", fault(s, s.handleEntities))
	route("POST "+kgwire.PathProperties, "properties", fault(s, s.handleProperties))
	route("POST "+kgwire.PathClassProps, "classprops", fault(s, s.handleClassProps))
	route("GET "+kgwire.PathStats, "stats", s.handleStats)
	route("GET /metrics", "metrics", httpdebug.MetricsHandler(s.registry, "kgd").ServeHTTP)
	route("GET /debug/slow", "slow", httpdebug.SlowHandler(s.slow).ServeHTTP)
	route("GET "+kgwire.PathHealthz, "healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	return mux
}

// observe tracks in-flight requests and offers every finished request to
// the slow log (which keeps only over-threshold ones). kgd handlers are
// thin batch loops with no span tree, so slow entries carry the method,
// path and wall clock but no trace events.
func (s *Server) observe(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.inFlight.Inc()
		defer s.inFlight.Dec()
		start := time.Now()
		h(w, r)
		if s.slow != nil {
			s.slow.Record(obs.SlowEntry{
				ID:    r.Method + " " + r.URL.Path,
				Start: start,
				DurNS: int64(time.Since(start)),
			})
		}
	}
}

// Stats returns the per-endpoint request counts and the number of
// injected faults so far.
func (s *Server) Stats() kgwire.StatsResponse {
	out := kgwire.StatsResponse{Requests: make(map[string]int64), Injected: s.injected.Load()}
	s.reqs.Range(func(k, v any) bool {
		out.Requests[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	return out
}

// Requests returns the request count recorded for one endpoint path.
func (s *Server) Requests(path string) int64 {
	if v, ok := s.reqs.Load(path); ok {
		return v.(*atomic.Int64).Load()
	}
	return 0
}

func (s *Server) count(path string) {
	v, ok := s.reqs.Load(path)
	if !ok {
		v, _ = s.reqs.LoadOrStore(path, new(atomic.Int64))
	}
	v.(*atomic.Int64).Add(1)
}

// fault wraps a handler with request counting, artificial latency, and
// probabilistic 500s.
func fault(s *Server, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.count(r.URL.Path)
		if s.cfg.Latency > 0 {
			t := time.NewTimer(s.cfg.Latency)
			select {
			case <-r.Context().Done():
				t.Stop()
				return
			case <-t.C:
			}
		}
		if s.cfg.FailRate > 0 {
			s.mu.Lock()
			fail := s.rng.Float64() < s.cfg.FailRate
			s.mu.Unlock()
			if fail {
				s.injected.Add(1)
				s.registry.Counters().Add(CtrInjected, 1)
				http.Error(w, "injected fault", http.StatusInternalServerError)
				return
			}
		}
		h(w, r)
	}
}

// decode reads a JSON request body, replying 400 on malformed input.
func decode[T any](w http.ResponseWriter, r *http.Request, req *T) bool {
	if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(req); err != nil {
		http.Error(w, "invalid request body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleResolve(w http.ResponseWriter, r *http.Request) {
	var req kgwire.ResolveRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.Values) > s.cfg.MaxBatch {
		http.Error(w, fmt.Sprintf("batch of %d exceeds limit %d", len(req.Values), s.cfg.MaxBatch), http.StatusBadRequest)
		return
	}
	links, err := s.cfg.Source.Resolve(r.Context(), req.Values)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp := kgwire.ResolveResponse{Links: make([]kgwire.Link, len(links))}
	for i, l := range links {
		resp.Links[i] = kgwire.FromLink(l)
	}
	writeJSON(w, resp)
}

func (s *Server) handleEntities(w http.ResponseWriter, r *http.Request) {
	var req kgwire.EntitiesRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.IDs) > s.cfg.MaxBatch {
		http.Error(w, fmt.Sprintf("batch of %d exceeds limit %d", len(req.IDs), s.cfg.MaxBatch), http.StatusBadRequest)
		return
	}
	ids := make([]kg.EntityID, len(req.IDs))
	for i, id := range req.IDs {
		ids[i] = kg.EntityID(id)
	}
	ents, err := s.cfg.Source.Entities(r.Context(), ids)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp := kgwire.EntitiesResponse{Entities: make([]kgwire.Entity, len(ents))}
	for i, e := range ents {
		resp.Entities[i] = kgwire.FromEntity(e)
	}
	writeJSON(w, resp)
}

func (s *Server) handleProperties(w http.ResponseWriter, r *http.Request) {
	var req kgwire.PropertiesRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.IDs) > s.cfg.MaxBatch {
		http.Error(w, fmt.Sprintf("batch of %d exceeds limit %d", len(req.IDs), s.cfg.MaxBatch), http.StatusBadRequest)
		return
	}
	ids := make([]kg.EntityID, len(req.IDs))
	for i, id := range req.IDs {
		ids[i] = kg.EntityID(id)
	}
	props, err := s.cfg.Source.GetProperties(r.Context(), ids, req.Props)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp := kgwire.PropertiesResponse{Props: make([]kgwire.Props, len(props))}
	for i, p := range props {
		resp.Props[i] = kgwire.FromProps(p)
	}
	writeJSON(w, resp)
}

func (s *Server) handleClassProps(w http.ResponseWriter, r *http.Request) {
	var req kgwire.ClassPropsRequest
	if !decode(w, r, &req) {
		return
	}
	props, err := s.cfg.Source.ClassProps(r.Context(), req.Class)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, kgwire.ClassPropsResponse{Props: props})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}

// Serve runs the handler on ln until ctx is cancelled, then shuts down
// gracefully (bounded by drainTimeout).
func (s *Server) Serve(ctx context.Context, ln net.Listener, drainTimeout time.Duration) error {
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	return hs.Shutdown(sctx)
}

// ListenAndServe is Serve over a fresh TCP listener on addr.
func (s *Server) ListenAndServe(ctx context.Context, addr string, drainTimeout time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln, drainTimeout)
}
