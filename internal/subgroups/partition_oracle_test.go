package subgroups

// Differential oracle for the counting-kernel migration of pushChildren's
// row-partition loop: the pre-migration inline partition is kept here
// verbatim and random (codes, rows) instances pin counting.PartitionRows to
// identical parts and first-seen code order.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nexus/internal/bins"
	"nexus/internal/counting"
)

func oraclePartition(codes []int32, gRows []int) ([]int32, map[int32][]int) {
	parts := make(map[int32][]int)
	var order []int32
	for _, r := range gRows {
		c := codes[r]
		if c == bins.Missing {
			continue
		}
		if parts[c] == nil {
			order = append(order, c)
		}
		parts[c] = append(parts[c], r)
	}
	return order, parts
}

func TestPartitionRowsMatchesOracle(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(200)
		card := 1 + r.Intn(8)
		codes := make([]int32, n)
		for i := range codes {
			if r.Intn(5) == 0 {
				codes[i] = bins.Missing
			} else {
				codes[i] = int32(r.Intn(card))
			}
		}
		// A subset of rows, in ascending order with gaps — the shape the
		// lattice passes (a parent's row set).
		var rows []int
		for i := 0; i < n; i++ {
			if r.Intn(3) != 0 {
				rows = append(rows, i)
			}
		}
		order, parts := counting.PartitionRows(codes, rows)
		worder, wparts := oraclePartition(codes, rows)
		if len(order) != len(worder) || len(parts) != len(wparts) {
			return false
		}
		for i := range order {
			if order[i] != worder[i] {
				return false
			}
		}
		for c, want := range wparts {
			got := parts[c]
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
