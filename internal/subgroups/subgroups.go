// Package subgroups implements Algorithm 2 of the paper (§4.3): finding the
// top-k largest data subgroups — context refinements of the query — for
// which a given explanation is NOT satisfactory (its explanation score
// I(O;T|C',E) exceeds a threshold τ). The refinement lattice is traversed
// best-first by group size with a max-heap, generating each node at most
// once and pruning descendants of qualifying groups.
//
// The traversal is batch-parallel: the scoring of frontier nodes — the only
// expensive step, one debiased-CMI evaluation per node — runs on a worker
// pool, while every traversal decision (pop order, expansion, result
// insertion, stop conditions) is replayed on a single goroutine in exactly
// the serial order. Output is therefore byte-identical at any Parallelism;
// see TopUnexplainedCtx.
package subgroups

import (
	"container/heap"
	"context"
	"encoding/binary"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"nexus/internal/bins"
	"nexus/internal/core"
	"nexus/internal/counting"
	"nexus/internal/infotheory"
	"nexus/internal/obs"
)

// RefinementAttr is a categorical attribute usable as a refinement
// dimension (numeric attributes are assumed pre-binned, per §4.3).
type RefinementAttr struct {
	Name string
	Enc  *bins.Encoded // row-level over the analysis view
}

// Assignment is one attr = value condition of a refinement.
type Assignment struct {
	AttrIdx int
	Attr    string
	Code    int32
	Value   string
}

// Group is a context refinement with its size and explanation score. Row
// sets live in a per-run cache during the search (see rowsetCache), not on
// the group, so heap nodes stay small.
type Group struct {
	Conds []Assignment
	Size  int
	// Score is I(O;T|C',E) — above τ means the explanation fails here.
	Score float64

	// key canonically identifies the refinement (the (AttrIdx, Code)
	// sequence, packed); it indexes the per-run row-set and score caches.
	key string
}

// String renders the refinement like "Continent == Europe".
func (g Group) String() string {
	parts := make([]string, len(g.Conds))
	for i, c := range g.Conds {
		parts[i] = fmt.Sprintf("%s == %s", c.Attr, c.Value)
	}
	return strings.Join(parts, " AND ")
}

// isAncestorOf reports whether g's conditions are a strict subset of
// other's.
func (g Group) isAncestorOf(other Group) bool {
	if len(g.Conds) >= len(other.Conds) {
		return false
	}
	have := make(map[[2]int32]bool, len(other.Conds))
	for _, c := range other.Conds {
		have[[2]int32{int32(c.AttrIdx), c.Code}] = true
	}
	for _, c := range g.Conds {
		if !have[[2]int32{int32(c.AttrIdx), c.Code}] {
			return false
		}
	}
	return true
}

// Options controls the search.
type Options struct {
	// K is the number of groups to return (default 5, as in Table 4).
	K int
	// Tau is the explanation-score threshold; groups scoring above it are
	// unexplained.
	Tau float64
	// MaxDepth bounds refinement depth (default 3).
	MaxDepth int
	// MinSize skips groups smaller than this (default 1% of rows, min 10) —
	// tiny groups have meaningless CMI estimates.
	MinSize int
	// MaxExplored caps the number of scored lattice nodes (default 1500).
	// When the explanation holds everywhere, the exhaustive traversal is
	// polynomial but large; the cap keeps the search interactive — in
	// practice unexplained groups surface within a handful of nodes (§5.4).
	MaxExplored int
	// Parallelism bounds the scoring workers (default GOMAXPROCS). It also
	// sets the frontier batch size (Parallelism × 4 heap nodes are scored
	// per batch); 1 scores each node inline on pop, with no goroutines.
	// Results and Stats are identical at any setting.
	Parallelism int
	// Weights are optional IPW weights over the analysis view. When set,
	// the slice must cover every view row.
	Weights []float64
	// Scorer, when non-nil, routes frontier-batch scoring through the
	// core.Scorer seam — e.g. a distremote.Scorer fanning the batch out to
	// a worker fleet. Workers re-derive each group's row set by the same
	// ascending scan the coordinator uses, so results stay byte-identical
	// to in-process scoring at any fleet size. Nil scores in process.
	Scorer core.Scorer
	// ScoreTag qualifies the dataset fingerprint shipped to remote scoring
	// workers (see core.ScoreContext.Tag). Ignored when Scorer is nil.
	ScoreTag string
	// Trace, when non-nil, receives a lattice-search span and node counters.
	Trace *obs.Trace
	// Counters, when non-nil and Trace is nil, receives the node counters
	// alone — the configuration of servers, which run concurrent searches
	// and cannot share a span tree but still publish counters.
	Counters *obs.Counters
}

// addCounter routes a counter to the trace when present, else to the bare
// counter set. Both sinks are safe from any goroutine; both may be nil.
func (o *Options) addCounter(name string, delta int64) {
	if o.Trace != nil {
		o.Trace.Add(name, delta)
		return
	}
	o.Counters.Add(name, delta)
}

// Stats reports search effort. Both fields are schedule-independent: they
// count the nodes the serial traversal order consumes, not the speculative
// scoring work (which the groups_scored counter tracks and which grows with
// Parallelism).
type Stats struct {
	Explored int // nodes whose score was consumed by the traversal
	Pushed   int // nodes pushed onto the heap
}

// batchFactor sizes the frontier batch: up to Parallelism × batchFactor
// heap nodes are scored per round. A factor > 1 amortizes the pool
// start/join over more work per round; nodes scored beyond the ones the
// traversal consumes are wasted speculation, so the factor stays small.
const batchFactor = 4

// TopUnexplained runs Algorithm 2: it returns the k largest context
// refinements whose explanation score exceeds τ, together with search
// statistics. It is TopUnexplainedCtx with a background context.
func TopUnexplained(t, o *bins.Encoded, explanation []*bins.Encoded, attrs []RefinementAttr, opts Options) ([]Group, Stats, error) {
	return TopUnexplainedCtx(context.Background(), t, o, explanation, attrs, opts)
}

// TopUnexplainedCtx is TopUnexplained honouring ctx: cancellation is checked
// before every batch and between worker evaluations, so a deadline or an
// abandoned request stops the search within one CMI evaluation per worker.
// On cancellation the returned error wraps ctx.Err() and no worker
// goroutines outlive the call.
//
// The traversal is parallel but its output is byte-identical to the serial
// one at any Options.Parallelism. The argument:
//
//   - The heap's comparison is a total order (size, then depth, then the
//     (AttrIdx, Code) condition sequence — no two distinct nodes tie), so
//     the minimum is unique and the pop sequence depends only on the heap's
//     contents, never on the physical array layout batching reshuffles.
//   - Scoring batches pop the top nodes, score the not-yet-scored ones
//     concurrently (memoizing results), and push every node back — the
//     contents are unchanged, so the consume order is unchanged.
//   - scoreGroup is a pure function of the group's row set: each evaluation
//     runs the same float operations in the same order on a private scratch
//     buffer, whichever worker runs it, so memoized scores are bit-identical
//     to serially computed ones.
//   - All state transitions — Explored counting, τ comparison, ancestor
//     suppression, child expansion, the K and MaxExplored stop conditions —
//     happen on one goroutine, consuming memoized scores in pop order.
//
// Only scheduling-effort counters (subgroup_batches, groups_scored) vary
// with Parallelism; results and Stats do not.
func TopUnexplainedCtx(ctx context.Context, t, o *bins.Encoded, explanation []*bins.Encoded, attrs []RefinementAttr, opts Options) ([]Group, Stats, error) {
	if opts.K <= 0 {
		opts.K = 5
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 3
	}
	n := t.Len()
	if opts.MinSize <= 0 {
		opts.MinSize = n / 100
		if opts.MinSize < 10 {
			opts.MinSize = 10
		}
	}
	if opts.MaxExplored <= 0 {
		opts.MaxExplored = 1500
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = runtime.GOMAXPROCS(0)
	}
	for _, a := range attrs {
		if a.Enc.Len() != n {
			return nil, Stats{}, fmt.Errorf("subgroups: attribute %q has %d rows, view has %d", a.Name, a.Enc.Len(), n)
		}
	}
	// A short weight vector would panic inside a scoring worker (scratch is
	// indexed by view row); reject it up front instead.
	if opts.Weights != nil && len(opts.Weights) != n {
		return nil, Stats{}, fmt.Errorf("subgroups: weights cover %d rows, view has %d", len(opts.Weights), n)
	}

	sp := opts.Trace.Start("subgroup-search")
	defer sp.End()
	// Publish the search's counting-kernel effort (dense/sparse passes, ID
	// joins, partitions) as the delta of the kernel's process-wide counters
	// over this call. The capture windows never nest: core.ExplainCtx (the
	// only other capture site) and the subgroup search are sibling phases,
	// so no pass is counted twice.
	countBase := counting.Stats()
	defer func() { counting.Stats().Delta(countBase).Each(opts.addCounter) }()

	// Fold a multi-attribute explanation into one pre-joined composite
	// (infotheory.JoinVars): every scored lattice node conditions on the same
	// explanation, so the per-node estimator joins 2 columns instead of
	// len(explanation)+1. The row partition — and hence every score — is
	// identical.
	if len(explanation) > 1 {
		vars := make([]infotheory.Var, len(explanation))
		for i, e := range explanation {
			vars[i] = e
		}
		explanation = []*bins.Encoded{infotheory.JoinVars("explanation", vars...)}
		opts.addCounter(obs.CompositeRebuilds, 1)
	}

	var stats Stats
	h := &groupHeap{}
	heap.Init(h)

	allRows := make([]int, n)
	for i := range allRows {
		allRows[i] = i
	}
	rc := newRowsetCache(attrs, allRows)
	sc := newScorer(t, o, explanation, opts.Weights, n, opts.Parallelism)
	if opts.Scorer != nil {
		attrEncs := make([]*bins.Encoded, len(attrs))
		for i, a := range attrs {
			attrEncs[i] = a.Enc
		}
		sc.remote = opts.Scorer
		sc.gc = &core.GroupContext{T: t, O: o, Explanation: explanation,
			Attrs: attrEncs, Base: opts.Weights, Tag: opts.ScoreTag}
	}
	root := Group{Size: n}
	pushChildren(h, root, allRows, attrs, &opts, &stats, rc)

	var results []Group
	for h.Len() > 0 && len(results) < opts.K && stats.Explored < opts.MaxExplored {
		if err := ctx.Err(); err != nil {
			return nil, stats, fmt.Errorf("subgroups: lattice search: %w", err)
		}
		if !sc.has((*h)[0].key) {
			// The next node to consume is unscored: score a frontier batch —
			// the top Parallelism × batchFactor nodes — concurrently, then
			// put them back. Heap contents (and thus the consume order) are
			// unchanged; only the score memo fills in.
			var batch []Group
			limit := opts.Parallelism * batchFactor
			for len(batch) < limit && h.Len() > 0 {
				batch = append(batch, heap.Pop(h).(Group))
			}
			err := sc.scoreBatch(ctx, batch, rc, &opts)
			for _, g := range batch {
				heap.Push(h, g)
			}
			opts.addCounter(obs.SubgroupBatches, 1)
			if err != nil {
				return nil, stats, fmt.Errorf("subgroups: lattice search: %w", err)
			}
		}
		g := heap.Pop(h).(Group)
		stats.Explored++
		g.Score = sc.take(g.key)
		if g.Score > opts.Tau {
			// update(R, C'): insert unless an ancestor already qualified.
			// Descendants of a qualifying group are pruned (not expanded).
			dominated := false
			for _, r := range results {
				if r.isAncestorOf(g) {
					dominated = true
					break
				}
			}
			if !dominated {
				results = append(results, g)
			}
			rc.drop(g.key)
			continue
		}
		if len(g.Conds) < opts.MaxDepth {
			rows, hit := rc.rows(g)
			if hit {
				opts.addCounter(obs.RowsetCacheHits, 1)
			}
			pushChildren(h, g, rows, attrs, &opts, &stats, rc)
		}
		rc.drop(g.key)
	}
	opts.addCounter(obs.SubgroupNodesExplored, int64(stats.Explored))
	opts.addCounter(obs.SubgroupNodesPushed, int64(stats.Pushed))
	sp.SetInt("explored", int64(stats.Explored))
	sp.SetInt("pushed", int64(stats.Pushed))
	sp.SetInt("groups-found", int64(len(results)))
	return results, stats, nil
}

// extendKey appends one (attr, code) condition to a parent's canonical key.
func extendKey(parent string, attrIdx int, code int32) string {
	var b [8]byte
	binary.LittleEndian.PutUint32(b[:4], uint32(attrIdx))
	binary.LittleEndian.PutUint32(b[4:], uint32(code))
	return parent + string(b[:])
}

// rowsetCache holds each live lattice node's row-index set, keyed by the
// node's canonical condition key. A child's row set is computed exactly once
// — by partitioning its parent's rows when the parent is expanded — instead
// of being re-intersected from the root at every use; entries are dropped
// once the node is consumed. The cache is written only between batches (on
// the traversal goroutine) and read concurrently by scoring workers.
type rowsetCache struct {
	attrs []RefinementAttr
	root  []int
	m     map[string][]int
}

func newRowsetCache(attrs []RefinementAttr, root []int) *rowsetCache {
	return &rowsetCache{attrs: attrs, root: root, m: make(map[string][]int)}
}

func (rc *rowsetCache) put(key string, rows []int) { rc.m[key] = rows }
func (rc *rowsetCache) drop(key string)            { delete(rc.m, key) }

// rows returns the group's row set and whether it was served from the cache.
// The miss path — re-intersecting the group's conditions from the root —
// exists for robustness only (every pushed node is cached until consumed);
// it produces the identical ascending row order the partition path does.
func (rc *rowsetCache) rows(g Group) ([]int, bool) {
	if r, ok := rc.m[g.key]; ok {
		return r, true
	}
	out := make([]int, 0, g.Size)
scan:
	for _, r := range rc.root {
		for _, c := range g.Conds {
			if rc.attrs[c.AttrIdx].Enc.Codes[r] != c.Code {
				continue scan
			}
		}
		out = append(out, r)
	}
	return out, false
}

// scorer memoizes frontier scores and owns the per-worker scratch buffers.
// The memo is written only after the worker pool of a batch has joined, so
// the traversal goroutine reads it without synchronization.
type scorer struct {
	t, o        *bins.Encoded
	explanation []*bins.Encoded
	base        []float64
	scores      map[string]float64
	scratch     [][]float64 // one per worker slot, each sized to the view
	n           int

	// remote/gc, when set, route whole frontier batches through the
	// core.Scorer seam instead of the in-process worker pool.
	remote core.Scorer
	gc     *core.GroupContext
}

func newScorer(t, o *bins.Encoded, explanation []*bins.Encoded, base []float64, n, parallelism int) *scorer {
	return &scorer{
		t: t, o: o, explanation: explanation, base: base,
		scores:  make(map[string]float64),
		scratch: make([][]float64, parallelism),
		n:       n,
	}
}

func (s *scorer) has(key string) bool {
	_, ok := s.scores[key]
	return ok
}

func (s *scorer) take(key string) float64 {
	v := s.scores[key]
	delete(s.scores, key)
	return v
}

// scoreBatch evaluates every not-yet-scored group of the batch, fanning the
// evaluations out over up to Parallelism workers. Workers stop claiming new
// groups once ctx is cancelled and are always joined before return, so none
// outlives the call; a cancelled batch reports ctx.Err() and stores only
// the evaluations that completed.
func (s *scorer) scoreBatch(ctx context.Context, batch []Group, rc *rowsetCache, opts *Options) error {
	todo := make([]Group, 0, len(batch))
	for _, g := range batch {
		if !s.has(g.key) {
			todo = append(todo, g)
		}
	}
	if len(todo) == 0 {
		return ctx.Err()
	}
	if s.remote != nil {
		// Remote scoring: ship the batch as (attr, code) condition specs.
		// The worker re-derives each row set by an ascending view scan —
		// the same order rc.rows produces — so the scores are the bits the
		// in-process path computes. rowset_cache_hits stays flat in this
		// mode (row sets are derived worker-side, not looked up here).
		specs := make([]core.GroupSpec, len(todo))
		for i, g := range todo {
			conds := make([]core.GroupCond, len(g.Conds))
			for j, c := range g.Conds {
				conds[j] = core.GroupCond{Attr: c.AttrIdx, Code: c.Code}
			}
			specs[i] = core.GroupSpec{Conds: conds}
		}
		remoteVals, err := s.remote.SubgroupBatch(ctx, s.gc, specs)
		if err != nil {
			return err
		}
		for i, g := range todo {
			s.scores[g.key] = remoteVals[i]
		}
		opts.addCounter(obs.GroupsScored, int64(len(todo)))
		return ctx.Err()
	}
	vals := make([]float64, len(todo))
	done := make([]bool, len(todo))
	var hits int64
	workers := opts.Parallelism
	if workers > len(todo) {
		workers = len(todo)
	}
	eval := func(w, i int) {
		if s.scratch[w] == nil {
			s.scratch[w] = make([]float64, s.n)
		}
		rows, hit := rc.rows(todo[i])
		if hit {
			atomic.AddInt64(&hits, 1)
		}
		vals[i] = scoreGroup(s.t, s.o, s.explanation, rows, s.base, s.scratch[w])
		done[i] = true
	}
	if workers <= 1 {
		for i := range todo {
			if ctx.Err() != nil {
				break
			}
			eval(0, i)
		}
	} else {
		var next int64 = -1
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&next, 1))
					if i >= len(todo) || ctx.Err() != nil {
						return
					}
					eval(w, i)
				}
			}(w)
		}
		wg.Wait()
	}
	for i, g := range todo {
		if done[i] {
			s.scores[g.key] = vals[i]
		}
	}
	opts.addCounter(obs.GroupsScored, int64(len(todo)))
	opts.addCounter(obs.RowsetCacheHits, hits)
	return ctx.Err()
}

// pushChildren generates the children of g: refinements extending it with
// one assignment of an attribute whose index exceeds the last used index
// (so every lattice node is generated exactly once). Children are pushed in
// ascending code order — a map-ordered push would make the heap's tie
// handling, and with it the traversal, vary between runs. Each child's row
// set is carved out of the parent's rows here, once, and cached for the
// child's later scoring and expansion.
func pushChildren(h *groupHeap, g Group, gRows []int, attrs []RefinementAttr, opts *Options, stats *Stats, rc *rowsetCache) {
	startAttr := 0
	if len(g.Conds) > 0 {
		startAttr = g.Conds[len(g.Conds)-1].AttrIdx + 1
	}
	for ai := startAttr; ai < len(attrs); ai++ {
		enc := attrs[ai].Enc
		// Partition g's rows by the attribute's codes (unified counting
		// kernel; first-seen order re-sorted ascending, as before).
		codes, parts := counting.PartitionRows(enc.Codes, gRows)
		sort.Slice(codes, func(a, b int) bool { return codes[a] < codes[b] })
		for _, code := range codes {
			rows := parts[code]
			if len(rows) < opts.MinSize || len(rows) == g.Size {
				// Too small, or the assignment does not refine (constant
				// within the group).
				continue
			}
			label := fmt.Sprintf("%d", code)
			if int(code) < len(enc.Labels) {
				label = enc.Labels[code]
			}
			child := Group{
				Conds: append(append([]Assignment(nil), g.Conds...), Assignment{
					AttrIdx: ai, Attr: attrs[ai].Name, Code: code, Value: label,
				}),
				Size: len(rows),
				key:  extendKey(g.key, ai, code),
			}
			rc.put(child.key, rows)
			heap.Push(h, child)
			stats.Pushed++
		}
	}
}

// scoreGroup computes I(O;T|E) restricted to the group's rows by masking
// weights outside the group. The bias-corrected estimator is essential
// here: the plug-in CMI inflates as groups shrink, which would make every
// small group look "unexplained". With a 0/1 mask the Kish effective sample
// size equals the group size, so the correction is exact per group.
//
// scratch is a caller-owned buffer covering every view row; rows only ever
// index into it (never into per-attribute bin space), so a refinement
// attribute with more bins than the exposure/outcome encodings cannot
// overrun it — pinned by TestTopUnexplainedWideRefinementAttr.
//
// The body lives in core.ScoreGroupRows so that remote scoring workers run
// the exact function the in-process path runs.
func scoreGroup(t, o *bins.Encoded, explanation []*bins.Encoded, rows []int, base []float64, scratch []float64) float64 {
	return core.ScoreGroupRows(t, o, explanation, rows, base, scratch)
}

// groupHeap is a max-heap of groups by size. Ties are broken on a total
// order — depth, then the (AttrIdx, Code) condition sequence — so the pop
// order, and therefore TopUnexplained's output, is identical across runs
// even when many groups share a size (container/heap is not stable), and
// independent of the physical array layout the batched frontier reshuffles.
type groupHeap []Group

func (h groupHeap) Len() int { return len(h) }
func (h groupHeap) Less(i, j int) bool {
	if h[i].Size != h[j].Size {
		return h[i].Size > h[j].Size
	}
	ci, cj := h[i].Conds, h[j].Conds
	if len(ci) != len(cj) {
		return len(ci) < len(cj) // shallower refinements first
	}
	for k := range ci {
		if ci[k].AttrIdx != cj[k].AttrIdx {
			return ci[k].AttrIdx < cj[k].AttrIdx
		}
		if ci[k].Code != cj[k].Code {
			return ci[k].Code < cj[k].Code
		}
	}
	return false
}
func (h groupHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *groupHeap) Push(x interface{}) { *h = append(*h, x.(Group)) }
func (h *groupHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
