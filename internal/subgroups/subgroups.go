// Package subgroups implements Algorithm 2 of the paper (§4.3): finding the
// top-k largest data subgroups — context refinements of the query — for
// which a given explanation is NOT satisfactory (its explanation score
// I(O;T|C',E) exceeds a threshold τ). The refinement lattice is traversed
// best-first by group size with a max-heap, generating each node at most
// once and pruning descendants of qualifying groups.
package subgroups

import (
	"container/heap"
	"context"
	"fmt"
	"sort"
	"strings"

	"nexus/internal/bins"
	"nexus/internal/infotheory"
	"nexus/internal/obs"
)

// RefinementAttr is a categorical attribute usable as a refinement
// dimension (numeric attributes are assumed pre-binned, per §4.3).
type RefinementAttr struct {
	Name string
	Enc  *bins.Encoded // row-level over the analysis view
}

// Assignment is one attr = value condition of a refinement.
type Assignment struct {
	AttrIdx int
	Attr    string
	Code    int32
	Value   string
}

// Group is a context refinement with its size and explanation score.
type Group struct {
	Conds []Assignment
	Rows  []int
	Size  int
	// Score is I(O;T|C',E) — above τ means the explanation fails here.
	Score float64
}

// String renders the refinement like "Continent == Europe".
func (g Group) String() string {
	parts := make([]string, len(g.Conds))
	for i, c := range g.Conds {
		parts[i] = fmt.Sprintf("%s == %s", c.Attr, c.Value)
	}
	return strings.Join(parts, " AND ")
}

// isAncestorOf reports whether g's conditions are a strict subset of
// other's.
func (g Group) isAncestorOf(other Group) bool {
	if len(g.Conds) >= len(other.Conds) {
		return false
	}
	have := make(map[[2]int32]bool, len(other.Conds))
	for _, c := range other.Conds {
		have[[2]int32{int32(c.AttrIdx), c.Code}] = true
	}
	for _, c := range g.Conds {
		if !have[[2]int32{int32(c.AttrIdx), c.Code}] {
			return false
		}
	}
	return true
}

// Options controls the search.
type Options struct {
	// K is the number of groups to return (default 5, as in Table 4).
	K int
	// Tau is the explanation-score threshold; groups scoring above it are
	// unexplained.
	Tau float64
	// MaxDepth bounds refinement depth (default 3).
	MaxDepth int
	// MinSize skips groups smaller than this (default 1% of rows, min 10) —
	// tiny groups have meaningless CMI estimates.
	MinSize int
	// MaxExplored caps the number of scored lattice nodes (default 1500).
	// When the explanation holds everywhere, the exhaustive traversal is
	// polynomial but large; the cap keeps the search interactive — in
	// practice unexplained groups surface within a handful of nodes (§5.4).
	MaxExplored int
	// Weights are optional IPW weights over the analysis view.
	Weights []float64
	// Trace, when non-nil, receives a lattice-search span and node counters.
	Trace *obs.Trace
}

// Stats reports search effort.
type Stats struct {
	Explored int // nodes whose score was evaluated
	Pushed   int // nodes pushed onto the heap
}

// TopUnexplained runs Algorithm 2: it returns the k largest context
// refinements whose explanation score exceeds τ, together with search
// statistics. It is TopUnexplainedCtx with a background context.
func TopUnexplained(t, o *bins.Encoded, explanation []*bins.Encoded, attrs []RefinementAttr, opts Options) ([]Group, Stats, error) {
	return TopUnexplainedCtx(context.Background(), t, o, explanation, attrs, opts)
}

// TopUnexplainedCtx is TopUnexplained honouring ctx: cancellation is checked
// before every lattice node is scored, so a deadline or an abandoned request
// stops the search within one CMI evaluation. On cancellation the returned
// error wraps ctx.Err().
func TopUnexplainedCtx(ctx context.Context, t, o *bins.Encoded, explanation []*bins.Encoded, attrs []RefinementAttr, opts Options) ([]Group, Stats, error) {
	if opts.K <= 0 {
		opts.K = 5
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 3
	}
	n := t.Len()
	if opts.MinSize <= 0 {
		opts.MinSize = n / 100
		if opts.MinSize < 10 {
			opts.MinSize = 10
		}
	}
	for _, a := range attrs {
		if a.Enc.Len() != n {
			return nil, Stats{}, fmt.Errorf("subgroups: attribute %q has %d rows, view has %d", a.Name, a.Enc.Len(), n)
		}
	}

	sp := opts.Trace.Start("subgroup-search")
	defer sp.End()

	// Fold a multi-attribute explanation into one pre-joined composite
	// (infotheory.JoinVars): every scored lattice node conditions on the same
	// explanation, so the per-node estimator joins 2 columns instead of
	// len(explanation)+1. The row partition — and hence every score — is
	// identical.
	if len(explanation) > 1 {
		vars := make([]infotheory.Var, len(explanation))
		for i, e := range explanation {
			vars[i] = e
		}
		explanation = []*bins.Encoded{infotheory.JoinVars("explanation", vars...)}
		opts.Trace.Add(obs.CompositeRebuilds, 1)
	}

	var stats Stats
	h := &groupHeap{}
	heap.Init(h)

	allRows := make([]int, n)
	for i := range allRows {
		allRows[i] = i
	}
	root := Group{Rows: allRows, Size: n}
	pushChildren(h, root, attrs, opts, &stats)

	if opts.MaxExplored <= 0 {
		opts.MaxExplored = 1500
	}
	var results []Group
	scratch := make([]float64, n)
	for h.Len() > 0 && len(results) < opts.K && stats.Explored < opts.MaxExplored {
		if err := ctx.Err(); err != nil {
			return nil, stats, fmt.Errorf("subgroups: lattice search: %w", err)
		}
		g := heap.Pop(h).(Group)
		stats.Explored++
		g.Score = scoreGroup(t, o, explanation, g.Rows, opts.Weights, scratch)
		if g.Score > opts.Tau {
			// update(R, C'): insert unless an ancestor already qualified.
			dominated := false
			for _, r := range results {
				if r.isAncestorOf(g) {
					dominated = true
					break
				}
			}
			if !dominated {
				results = append(results, g)
			}
			continue
		}
		if len(g.Conds) < opts.MaxDepth {
			pushChildren(h, g, attrs, opts, &stats)
		}
	}
	// Free the row slices of results (callers need conditions and sizes).
	for i := range results {
		results[i].Rows = nil
	}
	opts.Trace.Add(obs.SubgroupNodesExplored, int64(stats.Explored))
	opts.Trace.Add(obs.SubgroupNodesPushed, int64(stats.Pushed))
	sp.SetInt("explored", int64(stats.Explored))
	sp.SetInt("pushed", int64(stats.Pushed))
	sp.SetInt("groups-found", int64(len(results)))
	return results, stats, nil
}

// pushChildren generates the children of g: refinements extending it with
// one assignment of an attribute whose index exceeds the last used index
// (so every lattice node is generated exactly once). Children are pushed in
// ascending code order — a map-ordered push would make the heap's tie
// handling, and with it the traversal, vary between runs.
func pushChildren(h *groupHeap, g Group, attrs []RefinementAttr, opts Options, stats *Stats) {
	startAttr := 0
	if len(g.Conds) > 0 {
		startAttr = g.Conds[len(g.Conds)-1].AttrIdx + 1
	}
	for ai := startAttr; ai < len(attrs); ai++ {
		enc := attrs[ai].Enc
		// Partition g's rows by the attribute's codes.
		parts := make(map[int32][]int)
		codes := make([]int32, 0, len(parts))
		for _, r := range g.Rows {
			c := enc.Codes[r]
			if c == bins.Missing {
				continue
			}
			if parts[c] == nil {
				codes = append(codes, c)
			}
			parts[c] = append(parts[c], r)
		}
		sort.Slice(codes, func(a, b int) bool { return codes[a] < codes[b] })
		for _, code := range codes {
			rows := parts[code]
			if len(rows) < opts.MinSize || len(rows) == g.Size {
				// Too small, or the assignment does not refine (constant
				// within the group).
				continue
			}
			label := fmt.Sprintf("%d", code)
			if int(code) < len(enc.Labels) {
				label = enc.Labels[code]
			}
			child := Group{
				Conds: append(append([]Assignment(nil), g.Conds...), Assignment{
					AttrIdx: ai, Attr: attrs[ai].Name, Code: code, Value: label,
				}),
				Rows: rows,
				Size: len(rows),
			}
			heap.Push(h, child)
			stats.Pushed++
		}
	}
}

// scoreGroup computes I(O;T|E) restricted to the group's rows by masking
// weights outside the group. The bias-corrected estimator is essential
// here: the plug-in CMI inflates as groups shrink, which would make every
// small group look "unexplained". With a 0/1 mask the Kish effective sample
// size equals the group size, so the correction is exact per group.
func scoreGroup(t, o *bins.Encoded, explanation []*bins.Encoded, rows []int, base []float64, scratch []float64) float64 {
	for i := range scratch {
		scratch[i] = 0
	}
	for _, r := range rows {
		if base != nil {
			scratch[r] = base[r]
		} else {
			scratch[r] = 1
		}
	}
	return infotheory.CondMutualInfoDebiased(o, t, explanation, scratch)
}

// groupHeap is a max-heap of groups by size. Ties are broken on a total
// order — depth, then the (AttrIdx, Code) condition sequence — so the pop
// order, and therefore TopUnexplained's output, is identical across runs
// even when many groups share a size (container/heap is not stable).
type groupHeap []Group

func (h groupHeap) Len() int { return len(h) }
func (h groupHeap) Less(i, j int) bool {
	if h[i].Size != h[j].Size {
		return h[i].Size > h[j].Size
	}
	ci, cj := h[i].Conds, h[j].Conds
	if len(ci) != len(cj) {
		return len(ci) < len(cj) // shallower refinements first
	}
	for k := range ci {
		if ci[k].AttrIdx != cj[k].AttrIdx {
			return ci[k].AttrIdx < cj[k].AttrIdx
		}
		if ci[k].Code != cj[k].Code {
			return ci[k].Code < cj[k].Code
		}
	}
	return false
}
func (h groupHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *groupHeap) Push(x interface{}) { *h = append(*h, x.(Group)) }
func (h *groupHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
