package subgroups

import (
	"fmt"
	"strings"
	"testing"

	"nexus/internal/bins"
	"nexus/internal/stats"
	"nexus/internal/table"
)

// buildData creates a dataset where a global explanation Z works everywhere
// EXCEPT inside region == "EU", where T and O stay correlated given Z.
func buildData(tb testing.TB, n int, seed uint64) (t, o, z *bins.Encoded, attrs []RefinementAttr) {
	tb.Helper()
	rng := stats.NewRNG(seed)
	tv := make([]string, n)
	ov := make([]string, n)
	zv := make([]string, n)
	region := make([]string, n)
	other := make([]string, n)
	for i := 0; i < n; i++ {
		reg := []string{"EU", "AS", "NA", "AF"}[rng.Choice([]float64{0.4, 0.25, 0.2, 0.15})]
		region[i] = reg
		other[i] = fmt.Sprintf("g%d", rng.Intn(3))
		zc := rng.Intn(4)
		zv[i] = fmt.Sprintf("z%d", zc)
		if reg == "EU" {
			// Inside EU: direct dependence between T and O not through Z.
			c := rng.Intn(4)
			tv[i] = fmt.Sprintf("t%d", c)
			ov[i] = fmt.Sprintf("o%d", c)
		} else {
			tc := zc
			oc := zc
			if rng.Float64() < 0.1 {
				tc = rng.Intn(4)
			}
			if rng.Float64() < 0.1 {
				oc = rng.Intn(4)
			}
			tv[i] = fmt.Sprintf("t%d", tc)
			ov[i] = fmt.Sprintf("o%d", oc)
		}
	}
	mk := func(name string, vals []string) *bins.Encoded {
		e, err := bins.Encode(table.NewStringColumn(name, vals), bins.DefaultOptions())
		if err != nil {
			tb.Fatal(err)
		}
		return e
	}
	t, o, z = mk("T", tv), mk("O", ov), mk("Z", zv)
	attrs = []RefinementAttr{
		{Name: "region", Enc: mk("region", region)},
		{Name: "other", Enc: mk("other", other)},
	}
	return
}

func TestTopUnexplainedFindsEU(t *testing.T) {
	te, oe, ze, attrs := buildData(t, 12000, 1)
	groups, stats, err := TopUnexplained(te, oe, []*bins.Encoded{ze}, attrs, Options{K: 3, Tau: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) == 0 {
		t.Fatal("no unexplained groups found")
	}
	if !strings.Contains(groups[0].String(), "region == EU") {
		t.Fatalf("top group = %q, want region == EU", groups[0])
	}
	if groups[0].Score <= 0.2 {
		t.Fatalf("top group score %.3f not above τ", groups[0].Score)
	}
	if stats.Explored == 0 || stats.Pushed == 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestTopUnexplainedOrderedBySize(t *testing.T) {
	te, oe, ze, attrs := buildData(t, 12000, 2)
	groups, _, err := TopUnexplained(te, oe, []*bins.Encoded{ze}, attrs, Options{K: 5, Tau: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(groups); i++ {
		if groups[i].Size > groups[i-1].Size {
			t.Fatalf("groups not in size order: %d then %d", groups[i-1].Size, groups[i].Size)
		}
	}
}

func TestTopUnexplainedAncestorSuppression(t *testing.T) {
	te, oe, ze, attrs := buildData(t, 12000, 3)
	groups, _, err := TopUnexplained(te, oe, []*bins.Encoded{ze}, attrs, Options{K: 10, Tau: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range groups {
		for j, h := range groups {
			if i != j && g.isAncestorOf(h) {
				t.Fatalf("result %q is an ancestor of result %q", g, h)
			}
		}
	}
}

func TestTopUnexplainedRespectsTau(t *testing.T) {
	te, oe, ze, attrs := buildData(t, 12000, 4)
	// τ above any group's score → nothing qualifies.
	groups, _, err := TopUnexplained(te, oe, []*bins.Encoded{ze}, attrs, Options{K: 5, Tau: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 0 {
		t.Fatalf("groups with impossible τ: %v", groups)
	}
}

func TestTopUnexplainedPerfectExplanation(t *testing.T) {
	// When T and O are driven by Z everywhere, no subgroup should exceed a
	// reasonable τ.
	rng := stats.NewRNG(5)
	n := 8000
	tv := make([]string, n)
	ov := make([]string, n)
	zv := make([]string, n)
	region := make([]string, n)
	for i := 0; i < n; i++ {
		zc := rng.Intn(4)
		zv[i] = fmt.Sprintf("z%d", zc)
		tv[i] = fmt.Sprintf("t%d", zc)
		ov[i] = fmt.Sprintf("o%d", zc)
		region[i] = []string{"a", "b"}[rng.Intn(2)]
	}
	mk := func(name string, vals []string) *bins.Encoded {
		e, _ := bins.Encode(table.NewStringColumn(name, vals), bins.DefaultOptions())
		return e
	}
	groups, _, err := TopUnexplained(mk("T", tv), mk("O", ov), []*bins.Encoded{mk("Z", zv)},
		[]RefinementAttr{{Name: "region", Enc: mk("r", region)}}, Options{K: 5, Tau: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 0 {
		t.Fatalf("perfectly explained data produced groups: %v", groups)
	}
}

func TestTopUnexplainedMinSize(t *testing.T) {
	te, oe, ze, attrs := buildData(t, 12000, 6)
	_, stats1, err := TopUnexplained(te, oe, []*bins.Encoded{ze}, attrs, Options{K: 3, Tau: 0.2, MinSize: 4000})
	if err != nil {
		t.Fatal(err)
	}
	_, stats2, err := TopUnexplained(te, oe, []*bins.Encoded{ze}, attrs, Options{K: 3, Tau: 0.2, MinSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	if stats1.Pushed >= stats2.Pushed {
		t.Fatalf("larger MinSize should push fewer nodes: %d vs %d", stats1.Pushed, stats2.Pushed)
	}
}

func TestTopUnexplainedLengthMismatch(t *testing.T) {
	te, oe, ze, _ := buildData(t, 1000, 7)
	bad := RefinementAttr{Name: "short", Enc: &bins.Encoded{Name: "short", Card: 1, Codes: make([]int32, 10)}}
	if _, _, err := TopUnexplained(te, oe, []*bins.Encoded{ze}, []RefinementAttr{bad}, Options{K: 1, Tau: 0.1}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestIsAncestorOf(t *testing.T) {
	a := Group{Conds: []Assignment{{AttrIdx: 0, Code: 1}}}
	b := Group{Conds: []Assignment{{AttrIdx: 0, Code: 1}, {AttrIdx: 1, Code: 2}}}
	c := Group{Conds: []Assignment{{AttrIdx: 1, Code: 2}}}
	if !a.isAncestorOf(b) || !c.isAncestorOf(b) {
		t.Fatal("ancestor detection failed")
	}
	if b.isAncestorOf(a) || a.isAncestorOf(c) || a.isAncestorOf(a) {
		t.Fatal("false ancestor detected")
	}
}

func TestGroupString(t *testing.T) {
	g := Group{Conds: []Assignment{
		{Attr: "Continent", Value: "Europe"},
		{Attr: "Gender", Value: "female"},
	}}
	if s := g.String(); s != "Continent == Europe AND Gender == female" {
		t.Fatalf("String() = %q", s)
	}
}
