package subgroups

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"nexus/internal/bins"
	"nexus/internal/stats"
	"nexus/internal/table"
)

// buildData creates a dataset where a global explanation Z works everywhere
// EXCEPT inside region == "EU", where T and O stay correlated given Z.
func buildData(tb testing.TB, n int, seed uint64) (t, o, z *bins.Encoded, attrs []RefinementAttr) {
	tb.Helper()
	rng := stats.NewRNG(seed)
	tv := make([]string, n)
	ov := make([]string, n)
	zv := make([]string, n)
	region := make([]string, n)
	other := make([]string, n)
	for i := 0; i < n; i++ {
		reg := []string{"EU", "AS", "NA", "AF"}[rng.Choice([]float64{0.4, 0.25, 0.2, 0.15})]
		region[i] = reg
		other[i] = fmt.Sprintf("g%d", rng.Intn(3))
		zc := rng.Intn(4)
		zv[i] = fmt.Sprintf("z%d", zc)
		if reg == "EU" {
			// Inside EU: direct dependence between T and O not through Z.
			c := rng.Intn(4)
			tv[i] = fmt.Sprintf("t%d", c)
			ov[i] = fmt.Sprintf("o%d", c)
		} else {
			tc := zc
			oc := zc
			if rng.Float64() < 0.1 {
				tc = rng.Intn(4)
			}
			if rng.Float64() < 0.1 {
				oc = rng.Intn(4)
			}
			tv[i] = fmt.Sprintf("t%d", tc)
			ov[i] = fmt.Sprintf("o%d", oc)
		}
	}
	mk := func(name string, vals []string) *bins.Encoded {
		e, err := bins.Encode(table.NewStringColumn(name, vals), bins.DefaultOptions())
		if err != nil {
			tb.Fatal(err)
		}
		return e
	}
	t, o, z = mk("T", tv), mk("O", ov), mk("Z", zv)
	attrs = []RefinementAttr{
		{Name: "region", Enc: mk("region", region)},
		{Name: "other", Enc: mk("other", other)},
	}
	return
}

func TestTopUnexplainedFindsEU(t *testing.T) {
	te, oe, ze, attrs := buildData(t, 12000, 1)
	groups, stats, err := TopUnexplained(te, oe, []*bins.Encoded{ze}, attrs, Options{K: 3, Tau: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) == 0 {
		t.Fatal("no unexplained groups found")
	}
	if !strings.Contains(groups[0].String(), "region == EU") {
		t.Fatalf("top group = %q, want region == EU", groups[0])
	}
	if groups[0].Score <= 0.2 {
		t.Fatalf("top group score %.3f not above τ", groups[0].Score)
	}
	if stats.Explored == 0 || stats.Pushed == 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestTopUnexplainedOrderedBySize(t *testing.T) {
	te, oe, ze, attrs := buildData(t, 12000, 2)
	groups, _, err := TopUnexplained(te, oe, []*bins.Encoded{ze}, attrs, Options{K: 5, Tau: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(groups); i++ {
		if groups[i].Size > groups[i-1].Size {
			t.Fatalf("groups not in size order: %d then %d", groups[i-1].Size, groups[i].Size)
		}
	}
}

func TestTopUnexplainedAncestorSuppression(t *testing.T) {
	te, oe, ze, attrs := buildData(t, 12000, 3)
	groups, _, err := TopUnexplained(te, oe, []*bins.Encoded{ze}, attrs, Options{K: 10, Tau: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range groups {
		for j, h := range groups {
			if i != j && g.isAncestorOf(h) {
				t.Fatalf("result %q is an ancestor of result %q", g, h)
			}
		}
	}
}

func TestTopUnexplainedRespectsTau(t *testing.T) {
	te, oe, ze, attrs := buildData(t, 12000, 4)
	// τ above any group's score → nothing qualifies.
	groups, _, err := TopUnexplained(te, oe, []*bins.Encoded{ze}, attrs, Options{K: 5, Tau: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 0 {
		t.Fatalf("groups with impossible τ: %v", groups)
	}
}

func TestTopUnexplainedPerfectExplanation(t *testing.T) {
	// When T and O are driven by Z everywhere, no subgroup should exceed a
	// reasonable τ.
	rng := stats.NewRNG(5)
	n := 8000
	tv := make([]string, n)
	ov := make([]string, n)
	zv := make([]string, n)
	region := make([]string, n)
	for i := 0; i < n; i++ {
		zc := rng.Intn(4)
		zv[i] = fmt.Sprintf("z%d", zc)
		tv[i] = fmt.Sprintf("t%d", zc)
		ov[i] = fmt.Sprintf("o%d", zc)
		region[i] = []string{"a", "b"}[rng.Intn(2)]
	}
	mk := func(name string, vals []string) *bins.Encoded {
		e, _ := bins.Encode(table.NewStringColumn(name, vals), bins.DefaultOptions())
		return e
	}
	groups, _, err := TopUnexplained(mk("T", tv), mk("O", ov), []*bins.Encoded{mk("Z", zv)},
		[]RefinementAttr{{Name: "region", Enc: mk("r", region)}}, Options{K: 5, Tau: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 0 {
		t.Fatalf("perfectly explained data produced groups: %v", groups)
	}
}

func TestTopUnexplainedMinSize(t *testing.T) {
	te, oe, ze, attrs := buildData(t, 12000, 6)
	_, stats1, err := TopUnexplained(te, oe, []*bins.Encoded{ze}, attrs, Options{K: 3, Tau: 0.2, MinSize: 4000})
	if err != nil {
		t.Fatal(err)
	}
	_, stats2, err := TopUnexplained(te, oe, []*bins.Encoded{ze}, attrs, Options{K: 3, Tau: 0.2, MinSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	if stats1.Pushed >= stats2.Pushed {
		t.Fatalf("larger MinSize should push fewer nodes: %d vs %d", stats1.Pushed, stats2.Pushed)
	}
}

func TestTopUnexplainedLengthMismatch(t *testing.T) {
	te, oe, ze, _ := buildData(t, 1000, 7)
	bad := RefinementAttr{Name: "short", Enc: &bins.Encoded{Name: "short", Card: 1, Codes: make([]int32, 10)}}
	if _, _, err := TopUnexplained(te, oe, []*bins.Encoded{ze}, []RefinementAttr{bad}, Options{K: 1, Tau: 0.1}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

// tieHeavyFixture builds a tie-heavy lattice: every refinement attribute
// splits the rows into equal-size parts, so the heap holds many groups of
// identical size and any order-dependence — map iteration in pushChildren,
// unstable heap tie handling, batch-boundary effects of the parallel
// frontier — surfaces as output drift. The explanation is deliberately weak
// (most groups qualify) and has two attributes, so the pre-joined composite
// path is exercised too.
func tieHeavyFixture(tb testing.TB) (te, oe *bins.Encoded, expl []*bins.Encoded, attrs []RefinementAttr) {
	tb.Helper()
	n := 4800
	tv := make([]string, n)
	ov := make([]string, n)
	z1 := make([]string, n)
	z2 := make([]string, n)
	a1 := make([]string, n)
	a2 := make([]string, n)
	a3 := make([]string, n)
	for i := 0; i < n; i++ {
		c := i % 4
		tv[i] = fmt.Sprintf("t%d", c)
		oc := c
		if i%5 == 0 {
			oc = (c + 1) % 4
		}
		ov[i] = fmt.Sprintf("o%d", oc)
		z1[i] = fmt.Sprintf("z%d", (i/100)%2)
		z2[i] = fmt.Sprintf("y%d", (i/300)%3)
		a1[i] = fmt.Sprintf("a%d", i%4)      // four parts of 1200
		a2[i] = fmt.Sprintf("b%d", (i/4)%4)  // four parts of 1200
		a3[i] = fmt.Sprintf("c%d", (i/16)%3) // three parts of 1600
	}
	mk := func(name string, vals []string) *bins.Encoded {
		e, err := bins.Encode(table.NewStringColumn(name, vals), bins.DefaultOptions())
		if err != nil {
			tb.Fatal(err)
		}
		return e
	}
	te, oe = mk("T", tv), mk("O", ov)
	expl = []*bins.Encoded{mk("Z1", z1), mk("Z2", z2)}
	attrs = []RefinementAttr{
		{Name: "a1", Enc: mk("a1", a1)},
		{Name: "a2", Enc: mk("a2", a2)},
		{Name: "a3", Enc: mk("a3", a3)},
	}
	return
}

// renderSearch serializes groups and stats with full float precision, so
// any drift — order, score bits, effort — fails a string compare.
func renderSearch(groups []Group, st Stats) string {
	var b strings.Builder
	for _, g := range groups {
		fmt.Fprintf(&b, "%s|%d|%.17g\n", g.String(), g.Size, g.Score)
	}
	fmt.Fprintf(&b, "explored=%d pushed=%d", st.Explored, st.Pushed)
	return b.String()
}

func TestTopUnexplainedDeterministic(t *testing.T) {
	te, oe, expl, attrs := tieHeavyFixture(t)
	var first string
	for run := 0; run < 10; run++ {
		groups, st, err := TopUnexplained(te, oe, expl, attrs, Options{K: 6, Tau: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		if run == 0 {
			first = renderSearch(groups, st)
			if len(groups) == 0 {
				t.Fatal("fixture produced no qualifying groups; ties not exercised")
			}
			continue
		}
		if s := renderSearch(groups, st); s != first {
			t.Fatalf("run %d output differs:\n%s\n--- vs first run ---\n%s", run, s, first)
		}
	}
}

// TestTopUnexplainedParallelismInvariant pins the batched frontier's
// determinism contract: on a tie-heavy workload the search output — groups,
// order, score bits, Explored/Pushed stats — is byte-identical at any
// Parallelism, because batches only memoize scores and never change the
// heap's contents or the (total-order) pop sequence.
func TestTopUnexplainedParallelismInvariant(t *testing.T) {
	te, oe, expl, attrs := tieHeavyFixture(t)
	var want string
	for _, p := range []int{1, 2, 4, 8} {
		groups, st, err := TopUnexplained(te, oe, expl, attrs, Options{K: 6, Tau: 0.05, Parallelism: p})
		if err != nil {
			t.Fatalf("Parallelism=%d: %v", p, err)
		}
		got := renderSearch(groups, st)
		if p == 1 {
			want = got
			if len(groups) == 0 {
				t.Fatal("fixture produced no qualifying groups; ties not exercised")
			}
			continue
		}
		if got != want {
			t.Fatalf("Parallelism=%d output differs:\n%s\n--- vs serial ---\n%s", p, got, want)
		}
	}
}

// errAfterCtx is a context whose Err() starts returning context.Canceled
// after a fixed number of calls — a deterministic way to cancel mid-
// traversal, at an exact cooperative checkpoint, without racing a timer.
type errAfterCtx struct {
	context.Context
	calls int64
	after int64
}

func (c *errAfterCtx) Err() error {
	if atomic.AddInt64(&c.calls, 1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestTopUnexplainedCancellation pins the cancellation contract: a context
// cancelled mid-traversal stops the search promptly with an error wrapping
// ctx.Err(), and no scoring worker goroutine outlives the call.
func TestTopUnexplainedCancellation(t *testing.T) {
	te, oe, expl, attrs := tieHeavyFixture(t)

	t.Run("pre-cancelled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		groups, _, err := TopUnexplainedCtx(ctx, te, oe, expl, attrs, Options{K: 6, Tau: 0.05, Parallelism: 4})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if groups != nil {
			t.Fatalf("cancelled search returned groups: %v", groups)
		}
	})

	t.Run("mid-traversal", func(t *testing.T) {
		before := runtime.NumGoroutine()
		// Let a few checkpoints pass so at least one batch is scored, then
		// cancel; the traversal must notice at its next checkpoint.
		ctx := &errAfterCtx{Context: context.Background(), after: 3}
		_, st, err := TopUnexplainedCtx(ctx, te, oe, expl, attrs, Options{K: 6, Tau: 0.05, Parallelism: 4})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if st.Explored >= 1500 {
			t.Fatalf("cancellation did not stop the search early (explored %d)", st.Explored)
		}
		// goleak-style goroutine accounting: every scoring worker must have
		// joined before TopUnexplainedCtx returned, so the count settles
		// back to the baseline (polling tolerates unrelated runtime
		// goroutines winding down).
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		if g := runtime.NumGoroutine(); g > before {
			buf := make([]byte, 1<<20)
			t.Fatalf("leaked goroutines: %d before, %d after\n%s", before, g, buf[:runtime.Stack(buf, true)])
		}
	})

	t.Run("deadline-mid-scoring", func(t *testing.T) {
		// A real (channel-backed) cancellation while workers are scoring:
		// the batch joins, the traversal returns the deadline error.
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		defer cancel()
		<-ctx.Done()
		_, _, err := TopUnexplainedCtx(ctx, te, oe, expl, attrs, Options{K: 6, Tau: 0.05, Parallelism: 4})
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want context.DeadlineExceeded", err)
		}
	})
}

// TestTopUnexplainedWideRefinementAttr is the scratch-sizing regression
// test: a refinement attribute with far more bins than the exposure/outcome
// encodings (and a Labels table shorter than its code range) must neither
// overrun the per-worker scratch buffers — which are sized once up front to
// the view's row count, never to a bin count — nor derail determinism under
// parallel scoring.
func TestTopUnexplainedWideRefinementAttr(t *testing.T) {
	n := 3000
	tv := make([]string, n)
	ov := make([]string, n)
	zv := make([]string, n)
	wide := make([]int32, n)
	for i := 0; i < n; i++ {
		c := i % 3 // root encodings: card 3
		tv[i] = fmt.Sprintf("t%d", c)
		ov[i] = fmt.Sprintf("o%d", (c+i%2)%3)
		zv[i] = fmt.Sprintf("z%d", i%2)
		wide[i] = int32(i % 30) // 30 bins of 100 rows, card 30 >> card(T)
	}
	mk := func(name string, vals []string) *bins.Encoded {
		e, err := bins.Encode(table.NewStringColumn(name, vals), bins.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	te, oe, ze := mk("T", tv), mk("O", ov), mk("Z", zv)
	// Hand-built encoding: more bins than the root encodings, and only two
	// labels for thirty codes, so pushChildren's label fallback runs too.
	wideEnc := &bins.Encoded{Name: "wide", Card: 30, Labels: []string{"w0", "w1"}, Codes: wide}
	attrs := []RefinementAttr{{Name: "wide", Enc: wideEnc}}

	var want string
	for _, p := range []int{1, 4} {
		groups, st, err := TopUnexplained(te, oe, []*bins.Encoded{ze}, attrs,
			Options{K: 4, Tau: 0.01, MinSize: 50, Parallelism: p})
		if err != nil {
			t.Fatalf("Parallelism=%d: %v", p, err)
		}
		if st.Pushed == 0 {
			t.Fatal("wide attribute pushed no groups; fixture broken")
		}
		got := renderSearch(groups, st)
		if p == 1 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("Parallelism=%d output differs:\n%s\n--- vs serial ---\n%s", p, got, want)
		}
	}
}

// TestTopUnexplainedShortWeights pins the up-front validation that replaced
// a silent out-of-range panic inside a scoring worker: a weight vector not
// covering every view row is an error, not a crash.
func TestTopUnexplainedShortWeights(t *testing.T) {
	te, oe, ze, attrs := buildData(t, 1000, 8)
	_, _, err := TopUnexplained(te, oe, []*bins.Encoded{ze}, attrs,
		Options{K: 3, Tau: 0.2, Weights: make([]float64, 10)})
	if err == nil || !strings.Contains(err.Error(), "weights") {
		t.Fatalf("err = %v, want weights-length error", err)
	}
}

func TestIsAncestorOf(t *testing.T) {
	a := Group{Conds: []Assignment{{AttrIdx: 0, Code: 1}}}
	b := Group{Conds: []Assignment{{AttrIdx: 0, Code: 1}, {AttrIdx: 1, Code: 2}}}
	c := Group{Conds: []Assignment{{AttrIdx: 1, Code: 2}}}
	if !a.isAncestorOf(b) || !c.isAncestorOf(b) {
		t.Fatal("ancestor detection failed")
	}
	if b.isAncestorOf(a) || a.isAncestorOf(c) || a.isAncestorOf(a) {
		t.Fatal("false ancestor detected")
	}
}

func TestGroupString(t *testing.T) {
	g := Group{Conds: []Assignment{
		{Attr: "Continent", Value: "Europe"},
		{Attr: "Gender", Value: "female"},
	}}
	if s := g.String(); s != "Continent == Europe AND Gender == female" {
		t.Fatalf("String() = %q", s)
	}
}
