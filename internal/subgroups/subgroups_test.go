package subgroups

import (
	"fmt"
	"strings"
	"testing"

	"nexus/internal/bins"
	"nexus/internal/stats"
	"nexus/internal/table"
)

// buildData creates a dataset where a global explanation Z works everywhere
// EXCEPT inside region == "EU", where T and O stay correlated given Z.
func buildData(tb testing.TB, n int, seed uint64) (t, o, z *bins.Encoded, attrs []RefinementAttr) {
	tb.Helper()
	rng := stats.NewRNG(seed)
	tv := make([]string, n)
	ov := make([]string, n)
	zv := make([]string, n)
	region := make([]string, n)
	other := make([]string, n)
	for i := 0; i < n; i++ {
		reg := []string{"EU", "AS", "NA", "AF"}[rng.Choice([]float64{0.4, 0.25, 0.2, 0.15})]
		region[i] = reg
		other[i] = fmt.Sprintf("g%d", rng.Intn(3))
		zc := rng.Intn(4)
		zv[i] = fmt.Sprintf("z%d", zc)
		if reg == "EU" {
			// Inside EU: direct dependence between T and O not through Z.
			c := rng.Intn(4)
			tv[i] = fmt.Sprintf("t%d", c)
			ov[i] = fmt.Sprintf("o%d", c)
		} else {
			tc := zc
			oc := zc
			if rng.Float64() < 0.1 {
				tc = rng.Intn(4)
			}
			if rng.Float64() < 0.1 {
				oc = rng.Intn(4)
			}
			tv[i] = fmt.Sprintf("t%d", tc)
			ov[i] = fmt.Sprintf("o%d", oc)
		}
	}
	mk := func(name string, vals []string) *bins.Encoded {
		e, err := bins.Encode(table.NewStringColumn(name, vals), bins.DefaultOptions())
		if err != nil {
			tb.Fatal(err)
		}
		return e
	}
	t, o, z = mk("T", tv), mk("O", ov), mk("Z", zv)
	attrs = []RefinementAttr{
		{Name: "region", Enc: mk("region", region)},
		{Name: "other", Enc: mk("other", other)},
	}
	return
}

func TestTopUnexplainedFindsEU(t *testing.T) {
	te, oe, ze, attrs := buildData(t, 12000, 1)
	groups, stats, err := TopUnexplained(te, oe, []*bins.Encoded{ze}, attrs, Options{K: 3, Tau: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) == 0 {
		t.Fatal("no unexplained groups found")
	}
	if !strings.Contains(groups[0].String(), "region == EU") {
		t.Fatalf("top group = %q, want region == EU", groups[0])
	}
	if groups[0].Score <= 0.2 {
		t.Fatalf("top group score %.3f not above τ", groups[0].Score)
	}
	if stats.Explored == 0 || stats.Pushed == 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestTopUnexplainedOrderedBySize(t *testing.T) {
	te, oe, ze, attrs := buildData(t, 12000, 2)
	groups, _, err := TopUnexplained(te, oe, []*bins.Encoded{ze}, attrs, Options{K: 5, Tau: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(groups); i++ {
		if groups[i].Size > groups[i-1].Size {
			t.Fatalf("groups not in size order: %d then %d", groups[i-1].Size, groups[i].Size)
		}
	}
}

func TestTopUnexplainedAncestorSuppression(t *testing.T) {
	te, oe, ze, attrs := buildData(t, 12000, 3)
	groups, _, err := TopUnexplained(te, oe, []*bins.Encoded{ze}, attrs, Options{K: 10, Tau: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range groups {
		for j, h := range groups {
			if i != j && g.isAncestorOf(h) {
				t.Fatalf("result %q is an ancestor of result %q", g, h)
			}
		}
	}
}

func TestTopUnexplainedRespectsTau(t *testing.T) {
	te, oe, ze, attrs := buildData(t, 12000, 4)
	// τ above any group's score → nothing qualifies.
	groups, _, err := TopUnexplained(te, oe, []*bins.Encoded{ze}, attrs, Options{K: 5, Tau: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 0 {
		t.Fatalf("groups with impossible τ: %v", groups)
	}
}

func TestTopUnexplainedPerfectExplanation(t *testing.T) {
	// When T and O are driven by Z everywhere, no subgroup should exceed a
	// reasonable τ.
	rng := stats.NewRNG(5)
	n := 8000
	tv := make([]string, n)
	ov := make([]string, n)
	zv := make([]string, n)
	region := make([]string, n)
	for i := 0; i < n; i++ {
		zc := rng.Intn(4)
		zv[i] = fmt.Sprintf("z%d", zc)
		tv[i] = fmt.Sprintf("t%d", zc)
		ov[i] = fmt.Sprintf("o%d", zc)
		region[i] = []string{"a", "b"}[rng.Intn(2)]
	}
	mk := func(name string, vals []string) *bins.Encoded {
		e, _ := bins.Encode(table.NewStringColumn(name, vals), bins.DefaultOptions())
		return e
	}
	groups, _, err := TopUnexplained(mk("T", tv), mk("O", ov), []*bins.Encoded{mk("Z", zv)},
		[]RefinementAttr{{Name: "region", Enc: mk("r", region)}}, Options{K: 5, Tau: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 0 {
		t.Fatalf("perfectly explained data produced groups: %v", groups)
	}
}

func TestTopUnexplainedMinSize(t *testing.T) {
	te, oe, ze, attrs := buildData(t, 12000, 6)
	_, stats1, err := TopUnexplained(te, oe, []*bins.Encoded{ze}, attrs, Options{K: 3, Tau: 0.2, MinSize: 4000})
	if err != nil {
		t.Fatal(err)
	}
	_, stats2, err := TopUnexplained(te, oe, []*bins.Encoded{ze}, attrs, Options{K: 3, Tau: 0.2, MinSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	if stats1.Pushed >= stats2.Pushed {
		t.Fatalf("larger MinSize should push fewer nodes: %d vs %d", stats1.Pushed, stats2.Pushed)
	}
}

func TestTopUnexplainedLengthMismatch(t *testing.T) {
	te, oe, ze, _ := buildData(t, 1000, 7)
	bad := RefinementAttr{Name: "short", Enc: &bins.Encoded{Name: "short", Card: 1, Codes: make([]int32, 10)}}
	if _, _, err := TopUnexplained(te, oe, []*bins.Encoded{ze}, []RefinementAttr{bad}, Options{K: 1, Tau: 0.1}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestTopUnexplainedDeterministic(t *testing.T) {
	// Tie-heavy lattice: every refinement attribute splits the rows into
	// equal-size parts, so the heap holds many groups of identical size and
	// any order-dependence — map iteration in pushChildren, unstable heap
	// tie handling — surfaces as run-to-run output drift. The explanation
	// is deliberately weak (most groups qualify) and has two attributes, so
	// the pre-joined composite path is exercised too.
	n := 4800
	tv := make([]string, n)
	ov := make([]string, n)
	z1 := make([]string, n)
	z2 := make([]string, n)
	a1 := make([]string, n)
	a2 := make([]string, n)
	a3 := make([]string, n)
	for i := 0; i < n; i++ {
		c := i % 4
		tv[i] = fmt.Sprintf("t%d", c)
		oc := c
		if i%5 == 0 {
			oc = (c + 1) % 4
		}
		ov[i] = fmt.Sprintf("o%d", oc)
		z1[i] = fmt.Sprintf("z%d", (i/100)%2)
		z2[i] = fmt.Sprintf("y%d", (i/300)%3)
		a1[i] = fmt.Sprintf("a%d", i%4)      // four parts of 1200
		a2[i] = fmt.Sprintf("b%d", (i/4)%4)  // four parts of 1200
		a3[i] = fmt.Sprintf("c%d", (i/16)%3) // three parts of 1600
	}
	mk := func(name string, vals []string) *bins.Encoded {
		e, err := bins.Encode(table.NewStringColumn(name, vals), bins.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	te, oe := mk("T", tv), mk("O", ov)
	expl := []*bins.Encoded{mk("Z1", z1), mk("Z2", z2)}
	attrs := []RefinementAttr{
		{Name: "a1", Enc: mk("a1", a1)},
		{Name: "a2", Enc: mk("a2", a2)},
		{Name: "a3", Enc: mk("a3", a3)},
	}
	render := func(groups []Group, st Stats) string {
		var b strings.Builder
		for _, g := range groups {
			fmt.Fprintf(&b, "%s|%d|%.17g\n", g.String(), g.Size, g.Score)
		}
		fmt.Fprintf(&b, "explored=%d pushed=%d", st.Explored, st.Pushed)
		return b.String()
	}
	var first string
	for run := 0; run < 10; run++ {
		groups, st, err := TopUnexplained(te, oe, expl, attrs, Options{K: 6, Tau: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		if run == 0 {
			first = render(groups, st)
			if len(groups) == 0 {
				t.Fatal("fixture produced no qualifying groups; ties not exercised")
			}
			continue
		}
		if s := render(groups, st); s != first {
			t.Fatalf("run %d output differs:\n%s\n--- vs first run ---\n%s", run, s, first)
		}
	}
}

func TestIsAncestorOf(t *testing.T) {
	a := Group{Conds: []Assignment{{AttrIdx: 0, Code: 1}}}
	b := Group{Conds: []Assignment{{AttrIdx: 0, Code: 1}, {AttrIdx: 1, Code: 2}}}
	c := Group{Conds: []Assignment{{AttrIdx: 1, Code: 2}}}
	if !a.isAncestorOf(b) || !c.isAncestorOf(b) {
		t.Fatal("ancestor detection failed")
	}
	if b.isAncestorOf(a) || a.isAncestorOf(c) || a.isAncestorOf(a) {
		t.Fatal("false ancestor detected")
	}
}

func TestGroupString(t *testing.T) {
	g := Group{Conds: []Assignment{
		{Attr: "Continent", Value: "Europe"},
		{Attr: "Gender", Value: "female"},
	}}
	if s := g.String(); s != "Continent == Europe AND Gender == female" {
		t.Fatalf("String() = %q", s)
	}
}
