package obs

import (
	"math"
	"math/bits"
	"math/rand/v2"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: log-linear ("HDR-lite"). Values 0..2·histSub-1
// get an exact bucket each; beyond that, every power-of-two octave is split
// into histSub linear sub-buckets, bounding the relative error of any
// recorded value by 1/histSub (25%). With int64 inputs the largest octave
// is 2^62, giving histBuckets buckets total — small enough to keep a full
// array per stripe and never allocate on the record path.
const (
	histSubBits = 2
	histSub     = 1 << histSubBits
	histBuckets = (63-histSubBits)*histSub + histSub
	// histStripes spreads concurrent Record calls over independent count
	// arrays so goroutines don't serialize on the same cache lines. A
	// snapshot merges the stripes. Must be a power of two.
	histStripes = 8
)

// histStripe is one shard of a histogram's counts. All fields are updated
// with atomics only.
type histStripe struct {
	counts [histBuckets]int64
	count  int64
	sum    int64
}

// Histogram is a lock-free, log-bucketed distribution of int64 samples
// (typically nanoseconds). The record path is a pseudo-random stripe pick
// plus three atomic adds: no locks, no allocation — cheap enough for
// per-request serving paths. The zero value is usable; a nil *Histogram is
// an allocation-free no-op like the rest of obs. Construct through
// Registry.Histogram so the exposition layer knows about it.
type Histogram struct {
	name   string
	labels string // pre-rendered `k="v",...`, "" when unlabelled
	unit   Unit

	stripes [histStripes]histStripe
}

// bucketIndex maps a sample to its bucket. Negative samples clamp to 0.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < 2*histSub {
		return int(u)
	}
	exp := bits.Len64(u) - 1
	sub := (u >> uint(exp-histSubBits)) & (histSub - 1)
	return (exp-histSubBits)*histSub + int(sub) + histSub
}

// bucketUpper returns the largest sample value bucket i holds (inclusive).
func bucketUpper(i int) int64 {
	if i < 2*histSub {
		return int64(i)
	}
	j := i - histSub
	exp := uint(j/histSub + histSubBits)
	sub := uint64(j % histSub)
	lower := uint64(1)<<exp + sub<<(exp-histSubBits)
	upper := lower + uint64(1)<<(exp-histSubBits) - 1
	if upper > math.MaxInt64 {
		upper = math.MaxInt64
	}
	return int64(upper)
}

// Record adds one sample. Safe from any goroutine; allocation-free; no-op
// on a nil histogram.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	// rand/v2's global generator is per-thread runtime state: no lock, no
	// allocation. The stripe pick only spreads contention; counts land in
	// the same logical bucket regardless.
	s := &h.stripes[rand.Uint64()&(histStripes-1)]
	atomic.AddInt64(&s.counts[bucketIndex(v)], 1)
	atomic.AddInt64(&s.count, 1)
	atomic.AddInt64(&s.sum, v)
}

// RecordDuration records d in nanoseconds.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// RecordSince records the elapsed time since t0 in nanoseconds.
func (h *Histogram) RecordSince(t0 time.Time) { h.Record(int64(time.Since(t0))) }

// Merge adds o's recorded samples into h (both keep working afterwards;
// concurrent Records during the merge may be partially included). This is
// what makes per-worker or per-shard histograms foldable into one.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	dst := &h.stripes[0]
	for si := range o.stripes {
		src := &o.stripes[si]
		for b := range src.counts {
			if n := atomic.LoadInt64(&src.counts[b]); n != 0 {
				atomic.AddInt64(&dst.counts[b], n)
			}
		}
		atomic.AddInt64(&dst.count, atomic.LoadInt64(&src.count))
		atomic.AddInt64(&dst.sum, atomic.LoadInt64(&src.sum))
	}
}

// Name returns the histogram's registered name ("" for a nil histogram).
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// HistBucket is one non-empty bucket of a snapshot. Upper is the largest
// sample the bucket holds (inclusive), in the histogram's raw unit; Count
// is that bucket's own count (not cumulative).
type HistBucket struct {
	Upper int64 `json:"upper"`
	Count int64 `json:"count"`
}

// HistSnapshot is a point-in-time copy of a histogram, stripes merged.
type HistSnapshot struct {
	Name    string       `json:"name"`
	Labels  string       `json:"labels,omitempty"`
	Unit    Unit         `json:"-"`
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot merges the stripes into an exportable copy. Nil-safe.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{Name: h.name, Labels: h.labels, Unit: h.unit}
	var merged [histBuckets]int64
	for si := range h.stripes {
		st := &h.stripes[si]
		for b := range st.counts {
			merged[b] += atomic.LoadInt64(&st.counts[b])
		}
		s.Count += atomic.LoadInt64(&st.count)
		s.Sum += atomic.LoadInt64(&st.sum)
	}
	for b, n := range merged {
		if n != 0 {
			s.Buckets = append(s.Buckets, HistBucket{Upper: bucketUpper(b), Count: n})
		}
	}
	return s
}

// Quantile returns an upper bound on the q-quantile (q in [0,1]) of the
// recorded samples: the inclusive upper edge of the bucket the quantile
// falls in, so the estimate is at most 25% above the true value. Returns 0
// for an empty snapshot.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			return b.Upper
		}
	}
	return s.Buckets[len(s.Buckets)-1].Upper
}

// Gauge is an instantaneous int64 level (queue depth, busy workers,
// retained jobs). All methods are atomic and no-ops on a nil receiver.
// Construct through Registry.Gauge.
type Gauge struct {
	name   string
	labels string
	v      int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	atomic.StoreInt64(&g.v, v)
}

// Add moves the level by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	atomic.AddInt64(&g.v, delta)
}

// Inc and Dec move the level by ±1.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Get returns the current level (0 for a nil gauge).
func (g *Gauge) Get() int64 {
	if g == nil {
		return 0
	}
	return atomic.LoadInt64(&g.v)
}
