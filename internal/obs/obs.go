// Package obs is the observability substrate of the Explain pipeline: a
// zero-dependency (stdlib-only) tracing and metrics layer that every phase
// of nexus — query execution, entity linking, KG extraction, IPW fitting,
// offline/online pruning, MCIMR iterations, responsibility ranking and the
// subgroup lattice search — reports into.
//
// It provides three pieces:
//
//   - hierarchical spans (Trace.Start / Span.End) carrying wall-clock
//     durations, heap-allocation deltas and typed attributes;
//   - named counters (Trace.Add / Counters) such as CITests or
//     PermutationsRun, aggregated into a Snapshot;
//   - pluggable sinks: a human-readable tree printer
//     (Snapshot.WriteTree), a JSONL event sink (JSONLSink), and an
//     expvar-style JSON snapshot export (Snapshot / Publish).
//
// The nil invariant: every method on a nil *Trace, nil *Span and nil
// *Counters is a no-op that performs no allocation, so instrumented code
// paths cost a nil check when tracing is disabled. Instrumentation that
// must build a span name or attribute value (and would therefore allocate)
// guards with `if tr != nil` first.
//
// Span nesting follows call order: a Trace tracks the current open span
// under a mutex, and Start attaches the new span as a child of it. Spans
// must therefore be started from the sequential backbone of the pipeline;
// code inside parallel loops records counters (which are atomic and safe
// from any goroutine), not spans.
package obs

import (
	"runtime/metrics"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter names used across the pipeline. Phase-specific counters (e.g.
// pruned-per-rule) are composed with helpers below.
const (
	// CITests counts (conditional) independence tests: analytic debiased-CMI
	// tests, permutation tests (each counted once regardless of its number
	// of permutations), and selection-bias recoverability tests.
	CITests = "ci_tests"
	// PermutationsRun counts individual permuted statistics evaluated across
	// all permutation tests (responsibility, gain calibration, relevance
	// prune, fast marginal).
	PermutationsRun = "permutations_run"
	// CandidatesScored counts candidates whose individual relevance
	// I(O;T|C,E) was computed by the MCIMR relevance pass.
	CandidatesScored = "candidates_scored"
	// MCIMRIterations counts accepted MCIMR iterations (selected attributes).
	MCIMRIterations = "mcimr_iterations"
	// MCIMRSkips counts candidates set aside by the responsibility test or
	// the gain guard.
	MCIMRSkips = "mcimr_skips"
	// EntitiesLinked / EntitiesUnresolved / EntitiesAmbiguous aggregate NED
	// outcomes over distinct link-column values.
	EntitiesLinked     = "entities_linked"
	EntitiesUnresolved = "entities_unresolved"
	EntitiesAmbiguous  = "entities_ambiguous"
	// KGAttrs counts extracted candidate attributes.
	KGAttrs = "kg_attrs"
	// BiasedAttrs counts KG attributes flagged with selection bias (IPW
	// weights applied). This is the counter behind Analysis.NumBiased.
	BiasedAttrs = "biased_attrs"
	// IPWFits counts logistic propensity-model fits.
	IPWFits = "ipw_fits"
	// CacheHits counts reuses of a lazily computed encoding (the inputs all
	// entropy/CMI evaluations share): every hit is a re-binning avoided.
	CacheHits = "cache_hits"
	// SubgroupNodesExplored / SubgroupNodesPushed mirror subgroups.Stats.
	SubgroupNodesExplored = "subgroup_nodes_explored"
	SubgroupNodesPushed   = "subgroup_nodes_pushed"
	// SubgroupBatches counts frontier batches scored by the parallel lattice
	// search (one worker-pool round each); GroupsScored counts the lattice
	// nodes actually evaluated, including speculative evaluations the
	// traversal never consumes (GroupsScored − SubgroupNodesExplored is the
	// wasted speculation traded for parallelism). Both grow with
	// subgroups.Options.Parallelism; results never change with it.
	SubgroupBatches = "subgroup_batches"
	GroupsScored    = "groups_scored"
	// RowsetCacheHits counts group row-set lookups served by the per-run
	// parent→child row-index cache of the lattice search — each hit is a
	// row-set that did not have to be re-intersected from the root.
	RowsetCacheHits = "rowset_cache_hits"
	// ExtractCacheHits / ExtractCacheMisses count lookups in the keyed
	// per-dataset KG-extraction cache (nexus.ExtractionCache): a hit means a
	// whole NED + graph-walk pass was avoided because an earlier request
	// over the same dataset context already extracted (or is extracting —
	// waiters on an in-flight extraction count as hits too).
	ExtractCacheHits   = "extract_cache_hits"
	ExtractCacheMisses = "extract_cache_misses"
	// ReportCacheHits / ReportCacheMisses / ReportCacheShared /
	// ReportCacheEvictions count lookups in the versioned serving-tier
	// report cache (internal/reportcache): a hit serves the stored bytes of
	// an earlier computation, a miss runs the full pipeline, and a shared
	// lookup joined an in-flight computation under single-flight. Evictions
	// count LRU overflow, TTL expiry and version-bump purges together.
	ReportCacheHits      = "report_cache_hits"
	ReportCacheMisses    = "report_cache_misses"
	ReportCacheShared    = "report_cache_singleflight_shared"
	ReportCacheEvictions = "report_cache_evictions"
	// EncCacheHits counts repeat Candidate.Enc/Weights lookups served by the
	// per-run memo cache in core (every phase after the first to touch a
	// candidate hits instead of re-encoding).
	EncCacheHits = "enc_cache_hits"
	// CompositeRebuilds counts rebuilds of the pre-joined conditioning-set
	// variable (once per accepted MCIMR attribute, plus one per subgroup
	// search with a multi-attribute explanation).
	CompositeRebuilds = "composite_rebuilds"
	// SpeculativeEvals / SpeculativeWins count candidates evaluated by the
	// speculative consider-loop batches of MCIMR, and how many of those
	// speculative (non-argmin) evaluations were actually consumed by the
	// serial-order scan. Evals minus consumed results is wasted work traded
	// for parallelism.
	SpeculativeEvals = "speculative_evals"
	SpeculativeWins  = "speculative_wins"
	// KGCacheHits / KGCacheMisses count lookups served from (or missing in)
	// the remote KG client's entity/property LRU caches.
	KGCacheHits   = "kg_cache_hits"
	KGCacheMisses = "kg_cache_misses"
	// KGHTTPRequests counts HTTP requests issued to a remote KG backend
	// (retries included); KGHTTPRetries counts just the re-attempts after
	// retryable failures.
	KGHTTPRequests = "kg_http_requests"
	KGHTTPRetries  = "kg_http_retries"
	// DistUnits counts work units dispatched by the distributed scoring
	// coordinator (internal/distremote); DistRetries counts re-attempts
	// after a failed unit attempt, DistHedges counts speculative duplicate
	// dispatches to a second worker when the primary straggles, and
	// DistFallbacks counts units computed locally after exhausting every
	// worker attempt. DistHTTPRequests counts every HTTP request issued to
	// the worker fleet (registrations, scores, retries, hedges).
	DistUnits        = "dist_units"
	DistRetries      = "dist_retries"
	DistHedges       = "dist_hedges"
	DistFallbacks    = "dist_fallbacks"
	DistHTTPRequests = "dist_http_requests"
	// CountingDensePasses / CountingSparsePasses count tally passes served
	// by the unified counting kernel's dense-array fast path versus its
	// hash-map fallback (internal/counting). CountingIDJoins counts composite
	// dense-ID builds over two or more variables; CountingPartitions counts
	// row-partition passes (subgroup lattice children, table group-by).
	CountingDensePasses  = "counting_dense_passes"
	CountingSparsePasses = "counting_sparse_passes"
	CountingIDJoins      = "counting_id_joins"
	CountingPartitions   = "counting_partitions"
	// IngestRows / IngestChunks / DictEntries count the streaming columnar
	// ingest (internal/colstore): rows appended, row-chunks sealed, and
	// table-global dictionary entries created across all string columns.
	IngestRows   = "ingest_rows"
	IngestChunks = "ingest_chunks"
	DictEntries  = "dict_entries"
	// ColstoreChunkBytes names the resident-chunk-bytes gauge: bytes of
	// sealed columnar chunk storage (values, validity bitmaps, dictionaries)
	// currently held by live colstore tables process-wide. It is the
	// peak-RSS proxy of the scale bench.
	ColstoreChunkBytes = "colstore_resident_chunk_bytes"
)

// PrunedCounter names the per-rule prune counter, e.g.
// pruned.offline.high-entropy or pruned.online.low-relevance.
func PrunedCounter(phase, reason string) string {
	return "pruned." + phase + "." + reason
}

// HopCounter names the per-hop extracted-attribute counter, e.g.
// kg_attrs_hop1.
func HopCounter(hop int) string { return "kg_attrs_hop" + strconv.Itoa(hop) }

// Counters is a set of named atomic counters. The zero value is not usable;
// construct with NewCounters. All methods are safe for concurrent use and
// no-ops on a nil receiver.
type Counters struct {
	mu sync.RWMutex
	m  map[string]*int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters { return &Counters{m: make(map[string]*int64)} }

// Add increments the named counter by delta, creating it at zero first if
// needed.
func (c *Counters) Add(name string, delta int64) {
	if c == nil {
		return
	}
	c.mu.RLock()
	p := c.m[name]
	c.mu.RUnlock()
	if p == nil {
		c.mu.Lock()
		if p = c.m[name]; p == nil {
			p = new(int64)
			c.m[name] = p
		}
		c.mu.Unlock()
	}
	atomic.AddInt64(p, delta)
}

// Get returns the counter's current value (0 if absent or nil receiver).
func (c *Counters) Get(name string) int64 {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	p := c.m[name]
	c.mu.RUnlock()
	if p == nil {
		return 0
	}
	return atomic.LoadInt64(p)
}

// Snapshot copies the current counter values.
func (c *Counters) Snapshot() map[string]int64 {
	if c == nil {
		return nil
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]int64, len(c.m))
	for k, p := range c.m {
		out[k] = atomic.LoadInt64(p)
	}
	return out
}

// Trace collects one run's hierarchical spans and counters and forwards
// span-end events to its sinks. Construct with New; a nil *Trace disables
// all instrumentation.
type Trace struct {
	mu       sync.Mutex
	root     *Span
	current  *Span
	counters *Counters
	sinks    []Sink
	start    time.Time
	closed   bool
}

// New starts a trace whose root span carries the given name.
func New(name string) *Trace {
	return NewWithCounters(name, nil)
}

// NewWithCounters is New with the trace's counter set supplied by the
// caller (nil allocates a private one, exactly like New). Sharing one
// concurrency-safe Counters across many short-lived traces is how a
// server gives every request its own span tree while all requests keep
// accumulating into the same scrape-able counter totals.
func NewWithCounters(name string, c *Counters) *Trace {
	if c == nil {
		c = NewCounters()
	}
	t := &Trace{counters: c, start: time.Now()}
	t.root = &Span{tr: t, Name: name, start: t.start, alloc0: allocBytes()}
	t.current = t.root
	return t
}

// Counters exposes the trace's counter set (nil for a nil trace).
func (t *Trace) Counters() *Counters {
	if t == nil {
		return nil
	}
	return t.counters
}

// Add increments a named counter. Safe from any goroutine.
func (t *Trace) Add(name string, delta int64) {
	if t == nil {
		return
	}
	t.counters.Add(name, delta)
}

// AddSink registers a sink that receives an event whenever a span ends and
// a final counters event when the trace is closed.
func (t *Trace) AddSink(s Sink) {
	if t == nil || s == nil {
		return
	}
	t.mu.Lock()
	t.sinks = append(t.sinks, s)
	t.mu.Unlock()
}

// Root returns the root span (nil for a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Start opens a new span as a child of the currently open span. The caller
// must End it; nesting follows call order.
func (t *Trace) Start(name string) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{tr: t, Name: name, start: time.Now(), alloc0: allocBytes()}
	t.mu.Lock()
	sp.parent = t.current
	if sp.parent == nil {
		sp.parent = t.root
	}
	sp.parent.children = append(sp.parent.children, sp)
	t.current = sp
	t.mu.Unlock()
	return sp
}

// Close ends the root span (and implicitly any still-open descendants),
// emits a final counters event to the sinks, and returns the snapshot.
// Further spans must not be started after Close.
func (t *Trace) Close() Snapshot {
	if t == nil {
		return Snapshot{}
	}
	t.mu.Lock()
	alreadyClosed := t.closed
	t.closed = true
	t.mu.Unlock()
	if !alreadyClosed {
		t.endOpenSpans(t.root)
		t.mu.Lock()
		sinks := append([]Sink(nil), t.sinks...)
		t.mu.Unlock()
		if len(sinks) > 0 {
			ev := Event{Type: "counters", Counters: t.counters.Snapshot()}
			for _, s := range sinks {
				s.Emit(ev)
			}
		}
	}
	return t.snapshot()
}

// endOpenSpans ends s and any still-open descendants, deepest first, so
// child durations never exceed their parent's.
func (t *Trace) endOpenSpans(s *Span) {
	t.mu.Lock()
	children := append([]*Span(nil), s.children...)
	t.mu.Unlock()
	for _, c := range children {
		t.endOpenSpans(c)
	}
	s.End()
}

// Span is one node of the trace tree. All methods are no-ops on a nil
// receiver.
type Span struct {
	tr     *Trace
	parent *Span
	Name   string

	start, end     time.Time
	alloc0, alloc1 uint64
	attrs          []Attr
	children       []*Span
	ended          bool
}

// Attr is one key/value annotation on a span. Values are stored as strings
// so events and snapshots marshal without reflection surprises.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SetStr attaches a string attribute.
func (s *Span) SetStr(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.tr.mu.Unlock()
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, value int64) {
	if s == nil {
		return
	}
	s.SetStr(key, strconv.FormatInt(value, 10))
}

// SetFloat attaches a float attribute (formatted %.6g).
func (s *Span) SetFloat(key string, value float64) {
	if s == nil {
		return
	}
	s.SetStr(key, strconv.FormatFloat(value, 'g', 6, 64))
}

// End closes the span, restores its parent as the trace's current span and
// emits a span event to the sinks. Ending an already-ended span is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	alloc := allocBytes()
	s.tr.mu.Lock()
	if s.ended {
		s.tr.mu.Unlock()
		return
	}
	s.ended = true
	s.end = end
	s.alloc1 = alloc
	// Restore current to this span's parent, but only if the span being
	// ended is on the current ancestry path (tolerates out-of-order ends).
	for c := s.tr.current; c != nil; c = c.parent {
		if c == s {
			s.tr.current = s.parent
			break
		}
	}
	sinks := append([]Sink(nil), s.tr.sinks...)
	ev := Event{}
	if len(sinks) > 0 {
		ev = s.eventLocked()
	}
	s.tr.mu.Unlock()
	for _, sk := range sinks {
		sk.Emit(ev)
	}
}

// Duration returns the span's wall-clock duration (elapsed-so-far if the
// span is still open, 0 on a nil span).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return s.durationLocked()
}

func (s *Span) durationLocked() time.Duration {
	if s.ended {
		return s.end.Sub(s.start)
	}
	return time.Since(s.start)
}

// path returns the slash-joined ancestry (excluding the root's name is not
// excluded: the root is included so paths are unambiguous).
func (s *Span) pathLocked() string {
	if s.parent == nil {
		return s.Name
	}
	return s.parent.pathLocked() + "/" + s.Name
}

func (s *Span) eventLocked() Event {
	ev := Event{
		Type:  "span",
		Name:  s.Name,
		Path:  s.pathLocked(),
		DurNS: s.durationLocked().Nanoseconds(),
	}
	if s.alloc1 >= s.alloc0 {
		ev.AllocBytes = int64(s.alloc1 - s.alloc0)
	}
	if len(s.attrs) > 0 {
		ev.Attrs = append([]Attr(nil), s.attrs...)
	}
	return ev
}

// allocBytes samples the process-wide cumulative heap allocation. Deltas
// between Start and End approximate a span's allocation cost; under
// concurrency they include allocations from other goroutines and are
// therefore an upper bound, which is the useful direction for profiling.
func allocBytes() uint64 {
	sample := []metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	metrics.Read(sample)
	if sample[0].Value.Kind() == metrics.KindUint64 {
		return sample[0].Value.Uint64()
	}
	return 0
}
