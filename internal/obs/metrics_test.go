package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestRenderLabelsAndEscaping(t *testing.T) {
	if got := renderLabels(nil); got != "" {
		t.Fatalf("renderLabels(nil) = %q", got)
	}
	got := renderLabels([]string{"route", "explain", "outcome", `a"b\c`})
	want := `route="explain",outcome="a\"b\\c"`
	if got != want {
		t.Fatalf("renderLabels = %q, want %q", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("odd labelPairs must panic")
		}
	}()
	renderLabels([]string{"orphan"})
}

func TestSanitizeMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"pruned.offline.high-entropy": "pruned_offline_high_entropy",
		"Jobs Accepted":               "jobs_accepted",
		"already_snake_0":             "already_snake_0",
	} {
		if got := SanitizeMetricName(in); got != want {
			t.Fatalf("SanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheusExposition(t *testing.T) {
	r := NewRegistry(nil)
	r.Counters().Add("jobs.accepted", 3)
	r.Counters().Add("encode_errors_total", 1) // already suffixed: must not double
	r.Gauge("queue_depth").Set(4)
	r.SetGaugeFunc("jobs_retained", func() int64 { return 9 })
	h := r.Histogram("http_request_seconds", UnitSeconds, "route", "explain")
	h.Record(1e9) // 1s
	h.Record(1e9)
	h.Record(3e9) // 3s

	var b strings.Builder
	if err := r.WritePrometheus(&b, "nexusd"); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE nexusd_jobs_accepted_total counter\nnexusd_jobs_accepted_total 3\n",
		"# TYPE nexusd_encode_errors_total counter\nnexusd_encode_errors_total 1\n",
		"# TYPE nexusd_queue_depth gauge\nnexusd_queue_depth 4\n",
		"nexusd_jobs_retained 9\n",
		"# TYPE nexusd_http_request_seconds histogram\n",
		`nexusd_http_request_seconds_count{route="explain"} 3`,
		"# TYPE go_goroutines gauge\n",
		"go_gc_cycles_total ",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "_total_total") {
		t.Fatalf("counter suffix doubled:\n%s", out)
	}

	// Histogram buckets must be cumulative, end with +Inf == count, and
	// expose bounds in seconds (all observed values <= 4s, so every le
	// value must parse below 5).
	var lastCum int64 = -1
	infSeen := false
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "nexusd_http_request_seconds_bucket") {
			continue
		}
		var cum int64
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("bad bucket line %q", line)
		}
		cum = mustParseInt(t, fields[1])
		if cum < lastCum {
			t.Fatalf("buckets not cumulative at %q", line)
		}
		lastCum = cum
		if strings.Contains(line, `le="+Inf"`) {
			infSeen = true
			if cum != 3 {
				t.Fatalf("+Inf bucket = %d, want 3", cum)
			}
		}
	}
	if !infSeen {
		t.Fatal("no +Inf bucket emitted")
	}
	if !strings.Contains(out, `nexusd_http_request_seconds_sum{route="explain"} 5`) {
		t.Fatalf("sum not converted to seconds:\n%s", out)
	}

	// A nil registry still renders runtime metrics and returns no error.
	b.Reset()
	if err := (*Registry)(nil).WritePrometheus(&b, "x"); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}
	if !strings.Contains(b.String(), "go_goroutines") {
		t.Fatal("nil registry exposition missing runtime metrics")
	}
}

func mustParseInt(t *testing.T, s string) int64 {
	t.Helper()
	var v int64
	for _, c := range s {
		if c < '0' || c > '9' {
			t.Fatalf("not an integer: %q", s)
		}
		v = v*10 + int64(c-'0')
	}
	return v
}

func TestStageSinkProjectsKnownStages(t *testing.T) {
	r := NewRegistry(nil)
	sink := NewStageSink(r)
	sink.Emit(Event{Type: "span", Name: "ned Country", DurNS: 5e6})
	sink.Emit(Event{Type: "span", Name: "mcimr", DurNS: 2e6})
	sink.Emit(Event{Type: "span", Name: "iteration 3", DurNS: 1e6})
	sink.Emit(Event{Type: "span", Name: "consider smoker=yes", DurNS: 9e6}) // not a stage
	sink.Emit(Event{Type: "counters", Name: "mcimr", DurNS: 7e6})           // not a span

	byStage := map[string]int64{}
	for _, s := range r.histSnapshots() {
		if s.Name == "pipeline_stage_seconds" {
			byStage[s.Labels] = s.Count
		}
	}
	for label, want := range map[string]int64{
		`stage="ned"`:       1,
		`stage="mcimr"`:     1,
		`stage="iteration"`: 1,
	} {
		if byStage[label] != want {
			t.Fatalf("stage %s count = %d, want %d (all: %v)", label, byStage[label], want, byStage)
		}
	}
	var total int64
	for _, c := range byStage {
		total += c
	}
	if total != 3 {
		t.Fatalf("unexpected stage records: %v", byStage)
	}
}

func TestSlowLogRetention(t *testing.T) {
	if NewSlowLog(0, 5) != nil {
		t.Fatal("threshold<=0 must disable the slow log")
	}
	var nilLog *SlowLog
	if nilLog.Record(SlowEntry{DurNS: 1e12}) || nilLog.Seen() != 0 || nilLog.Snapshot() != nil || nilLog.Threshold() != 0 {
		t.Fatal("nil SlowLog must no-op")
	}

	l := NewSlowLog(10*time.Millisecond, 3)
	if l.Record(SlowEntry{ID: "fast", DurNS: int64(5 * time.Millisecond)}) {
		t.Fatal("under-threshold entry retained")
	}
	for _, d := range []int64{20, 40, 30, 15, 50} { // ms
		l.Record(SlowEntry{ID: "job", DurNS: d * 1e6})
	}
	if l.Seen() != 5 {
		t.Fatalf("seen = %d, want 5", l.Seen())
	}
	snap := l.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("retained %d entries, want 3", len(snap))
	}
	// Slowest first, keeping only the 3 slowest of {20,40,30,15,50}.
	want := []int64{50e6, 40e6, 30e6}
	for i, e := range snap {
		if e.DurNS != want[i] {
			t.Fatalf("snapshot[%d].DurNS = %d, want %d", i, e.DurNS, want[i])
		}
	}

	var b strings.Builder
	if err := l.WriteJSONL(&b); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 || !strings.Contains(lines[0], `"dur_ns":50000000`) {
		t.Fatalf("unexpected JSONL dump:\n%s", b.String())
	}
}

func TestCaptureSinkKeepsSpansOnly(t *testing.T) {
	var s CaptureSink
	s.Emit(Event{Type: "span", Name: "prepare", DurNS: 1})
	s.Emit(Event{Type: "counters", Counters: map[string]int64{"x": 1}})
	s.Emit(Event{Type: "span", Name: "mcimr", DurNS: 2})
	ev := s.Events()
	if len(ev) != 2 || ev[0].Name != "prepare" || ev[1].Name != "mcimr" {
		t.Fatalf("captured events = %+v", ev)
	}
	ev[0].Name = "mutated"
	if s.Events()[0].Name != "prepare" {
		t.Fatal("Events must return a copy")
	}
}

func TestNewWithCountersSharesSet(t *testing.T) {
	shared := NewCounters()
	tr := NewWithCounters("req", shared)
	tr.Counters().Add("seen", 1)
	tr.Close()
	if shared.Get("seen") != 1 {
		t.Fatalf("shared counter = %d, want 1", shared.Get("seen"))
	}
	if NewWithCounters("req", nil).Counters() == nil {
		t.Fatal("nil counters must be allocated")
	}
}

func TestWithTraceRoundTrip(t *testing.T) {
	ctx := context.Background()
	if TraceFrom(ctx) != nil {
		t.Fatal("empty context must carry no trace")
	}
	if WithTrace(ctx, nil) != ctx {
		t.Fatal("WithTrace(nil) must return ctx unchanged")
	}
	tr := New("req")
	if got := TraceFrom(WithTrace(ctx, tr)); got != tr {
		t.Fatalf("TraceFrom = %p, want %p", got, tr)
	}
}
