package obs

import (
	"sort"
	"strings"
	"sync"
)

// Unit declares how a histogram's raw int64 samples are interpreted by the
// exposition layer.
type Unit int

const (
	// UnitNone exposes bucket bounds and sums as raw integers (counts,
	// retries, sizes).
	UnitNone Unit = iota
	// UnitSeconds means samples are nanoseconds; the exposition divides
	// bounds and sums by 1e9 so scrapes see base-unit seconds.
	UnitSeconds
)

// Registry is the collection point of a process's serving metrics: one
// shared Counters set plus named histograms, gauges and gauge callbacks.
// It is what GET /metrics renders (WritePrometheus). All methods are safe
// for concurrent use and no-ops on a nil receiver — a nil *Registry hands
// out nil *Histogram / *Gauge, which no-op in turn, so instrumented code
// needs no enabled-check (the obs nil invariant).
//
// Histogram and Gauge are get-or-create and build a lookup key, so hot
// paths should call them once and keep the returned pointer; the record
// methods themselves are allocation-free.
type Registry struct {
	counters *Counters

	mu       sync.RWMutex
	hists    map[string]*Histogram
	gauges   map[string]*Gauge
	gaugeFns map[string]gaugeFn
}

type gaugeFn struct {
	name   string
	labels string
	fn     func() int64
}

// NewRegistry builds a registry over the given counter set (nil allocates
// a private one). Sharing the set with a nexus.Session's Metrics makes the
// whole pipeline's counters scrape-able alongside the serving metrics.
func NewRegistry(c *Counters) *Registry {
	if c == nil {
		c = NewCounters()
	}
	return &Registry{
		counters: c,
		hists:    map[string]*Histogram{},
		gauges:   map[string]*Gauge{},
		gaugeFns: map[string]gaugeFn{},
	}
}

// Counters exposes the registry's counter set (nil for a nil registry).
func (r *Registry) Counters() *Counters {
	if r == nil {
		return nil
	}
	return r.counters
}

// renderLabels turns ("outcome", "ok", "route", "explain") into
// `outcome="ok",route="explain"`. Pairs keep caller order; values are
// escaped per the Prometheus text format.
func renderLabels(labelPairs []string) string {
	if len(labelPairs) == 0 {
		return ""
	}
	if len(labelPairs)%2 != 0 {
		panic("obs: labelPairs must be key,value,...")
	}
	var b strings.Builder
	for i := 0; i < len(labelPairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labelPairs[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labelPairs[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func metricKey(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// Histogram returns the named histogram, creating it on first use. name
// must be snake_case and end with its unit suffix (_seconds for
// UnitSeconds); the exposition lint enforces this. labelPairs is an
// optional key,value,... list — each distinct label set is its own series.
func (r *Registry) Histogram(name string, unit Unit, labelPairs ...string) *Histogram {
	if r == nil {
		return nil
	}
	key := metricKey(name, renderLabels(labelPairs))
	r.mu.RLock()
	h := r.hists[key]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[key]; h == nil {
		h = &Histogram{name: name, labels: renderLabels(labelPairs), unit: unit}
		r.hists[key] = h
	}
	return h
}

// Gauge returns the named settable gauge, creating it on first use.
func (r *Registry) Gauge(name string, labelPairs ...string) *Gauge {
	if r == nil {
		return nil
	}
	key := metricKey(name, renderLabels(labelPairs))
	r.mu.RLock()
	g := r.gauges[key]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[key]; g == nil {
		g = &Gauge{name: name, labels: renderLabels(labelPairs)}
		r.gauges[key] = g
	}
	return g
}

// SetGaugeFunc registers a callback evaluated at exposition time — the
// natural shape for levels the owner can read but not eventfully track
// (queue depth from len(chan), retained jobs from a store). Re-registering
// a name replaces the callback.
func (r *Registry) SetGaugeFunc(name string, fn func() int64, labelPairs ...string) {
	if r == nil || fn == nil {
		return
	}
	labels := renderLabels(labelPairs)
	r.mu.Lock()
	r.gaugeFns[metricKey(name, labels)] = gaugeFn{name: name, labels: labels, fn: fn}
	r.mu.Unlock()
}

// histSnapshots returns stable-ordered snapshots of every histogram.
func (r *Registry) histSnapshots() []HistSnapshot {
	r.mu.RLock()
	hs := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hs = append(hs, h)
	}
	r.mu.RUnlock()
	out := make([]HistSnapshot, len(hs))
	for i, h := range hs {
		out[i] = h.Snapshot()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Labels < out[j].Labels
	})
	return out
}

// gaugeValue is one gauge series at exposition time.
type gaugeValue struct {
	name, labels string
	value        int64
}

func (r *Registry) gaugeValues() []gaugeValue {
	r.mu.RLock()
	out := make([]gaugeValue, 0, len(r.gauges)+len(r.gaugeFns))
	fns := make([]gaugeFn, 0, len(r.gaugeFns))
	for _, g := range r.gauges {
		out = append(out, gaugeValue{name: g.name, labels: g.labels, value: g.Get()})
	}
	for _, f := range r.gaugeFns {
		fns = append(fns, f)
	}
	r.mu.RUnlock()
	for _, f := range fns { // call outside the lock: fn may take other locks
		out = append(out, gaugeValue{name: f.name, labels: f.labels, value: f.fn()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	return out
}

// StageSink adapts the span stream of a per-request Trace into the
// registry's per-stage latency histograms: every ended span whose base
// name (the part before the first space — "ned Country" → "ned",
// "iteration 3" → "iteration") is a known pipeline stage records its
// duration into pipeline_stage_seconds{stage="..."}. This is how the
// paper's per-phase runtime breakdown (extraction vs. pruning vs. MCIMR
// vs. subgroup search) becomes a first-class serving metric without any
// new instrumentation in the pipeline itself. Unknown span names are
// ignored, so metric cardinality stays bounded no matter what a trace
// emits. Safe for concurrent use by many traces.
type StageSink struct {
	stages map[string]*Histogram
}

// PipelineStages are the span base names the StageSink projects into
// pipeline_stage_seconds, i.e. the sequential backbone of an Explain.
var PipelineStages = []string{
	"parse", "prepare", "execute-query", "encode-exposure-outcome",
	"input-candidates", "kg-extract", "ned", "kg-prefetch", "kg-walk",
	"core-explain", "offline-prune", "online-prune", "relevance-pass",
	"mcimr", "iteration", "final-score", "responsibility",
	"subgroup-search",
}

// NewStageSink builds the sink with one histogram per known stage,
// pre-created so Emit never allocates a lookup key.
func NewStageSink(r *Registry) *StageSink {
	s := &StageSink{stages: make(map[string]*Histogram, len(PipelineStages))}
	for _, st := range PipelineStages {
		label := strings.ReplaceAll(st, "-", "_")
		s.stages[st] = r.Histogram("pipeline_stage_seconds", UnitSeconds, "stage", label)
	}
	return s
}

// Emit implements Sink: span events for known stages record their
// duration; everything else (unknown spans, the final counters event) is
// dropped.
func (s *StageSink) Emit(e Event) {
	if e.Type != "span" {
		return
	}
	base := e.Name
	if i := strings.IndexByte(base, ' '); i >= 0 {
		base = base[:i]
	}
	if h, ok := s.stages[base]; ok {
		h.Record(e.DurNS)
	}
}
