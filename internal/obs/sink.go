package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
	"unicode/utf8"
)

// Event is what sinks receive: one record per ended span, plus a final
// counters record when the trace closes.
type Event struct {
	Type       string           `json:"type"` // "span" | "counters"
	Name       string           `json:"name,omitempty"`
	Path       string           `json:"path,omitempty"`
	DurNS      int64            `json:"dur_ns,omitempty"`
	AllocBytes int64            `json:"alloc_bytes,omitempty"`
	Attrs      []Attr           `json:"attrs,omitempty"`
	Counters   map[string]int64 `json:"counters,omitempty"`
}

// Sink consumes trace events. Emit may be called from multiple goroutines.
type Sink interface {
	Emit(Event)
}

// JSONLSink writes one JSON object per event to w (JSON Lines). Writes are
// serialized; encode errors are recorded and returned by Err.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONLSink wraps w as a JSONL event sink.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Emit writes the event as one JSON line.
func (s *JSONLSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.enc.Encode(e); err != nil && s.err == nil {
		s.err = err
	}
}

// Err returns the first encode error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// SpanData is the exported form of one span in a Snapshot.
type SpanData struct {
	Name       string      `json:"name"`
	StartNS    int64       `json:"start_ns"` // relative to the trace start
	DurNS      int64       `json:"dur_ns"`
	AllocBytes int64       `json:"alloc_bytes,omitempty"`
	Attrs      []Attr      `json:"attrs,omitempty"`
	Children   []*SpanData `json:"children,omitempty"`
}

// Snapshot is a point-in-time export of a trace: the span tree plus the
// counter values. It marshals to JSON directly (the expvar-style export
// consumed by the harness and bench_test.go).
type Snapshot struct {
	Name     string           `json:"name"`
	TotalNS  int64            `json:"total_ns"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Root     *SpanData        `json:"root,omitempty"`
}

// Snapshot exports the trace's current state. Safe to call on a live trace
// and on a nil trace (which yields a zero Snapshot).
func (t *Trace) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{}
	}
	return t.snapshot()
}

func (t *Trace) snapshot() Snapshot {
	t.mu.Lock()
	root := exportSpan(t.root, t.start)
	t.mu.Unlock()
	return Snapshot{
		Name:     t.root.Name,
		TotalNS:  root.DurNS,
		Counters: t.counters.Snapshot(),
		Root:     root,
	}
}

func exportSpan(s *Span, origin time.Time) *SpanData {
	d := &SpanData{
		Name:    s.Name,
		StartNS: s.start.Sub(origin).Nanoseconds(),
		DurNS:   s.durationLocked().Nanoseconds(),
	}
	if s.ended && s.alloc1 >= s.alloc0 {
		d.AllocBytes = int64(s.alloc1 - s.alloc0)
	}
	if len(s.attrs) > 0 {
		d.Attrs = append([]Attr(nil), s.attrs...)
	}
	for _, c := range s.children {
		d.Children = append(d.Children, exportSpan(c, origin))
	}
	return d
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return []byte("{}")
	}
	return b
}

// Flatten maps slash-joined span paths to total duration in nanoseconds,
// summing spans that share a path (e.g. repeated MCIMR iterations). This is
// the per-phase accounting benchmarks compare across commits.
func (s Snapshot) Flatten() map[string]int64 {
	out := make(map[string]int64)
	var walk func(d *SpanData, prefix string)
	walk = func(d *SpanData, prefix string) {
		path := d.Name
		if prefix != "" {
			path = prefix + "/" + d.Name
		}
		out[path] += d.DurNS
		for _, c := range d.Children {
			walk(c, path)
		}
	}
	if s.Root != nil {
		walk(s.Root, "")
	}
	return out
}

// WriteTree renders the snapshot as a human-readable phase tree: every span
// with its duration, its share of the total, allocation delta and
// attributes, followed by the sorted counters.
func (s Snapshot) WriteTree(w io.Writer) error {
	if s.Root == nil {
		_, err := fmt.Fprintln(w, "(empty trace)")
		return err
	}
	total := float64(s.TotalNS)
	if total <= 0 {
		total = 1
	}
	var b strings.Builder
	var render func(d *SpanData, prefix string, last bool, depth int)
	render = func(d *SpanData, prefix string, last bool, depth int) {
		connector, childPrefix := "", ""
		if depth > 0 {
			if last {
				connector, childPrefix = prefix+"└─ ", prefix+"   "
			} else {
				connector, childPrefix = prefix+"├─ ", prefix+"│  "
			}
		}
		pad := 44 - utf8.RuneCountInString(connector)
		if pad < len(d.Name) {
			pad = len(d.Name)
		}
		line := fmt.Sprintf("%s%-*s %10s %6.1f%%", connector, pad, d.Name,
			time.Duration(d.DurNS).Round(time.Microsecond), 100*float64(d.DurNS)/total)
		if d.AllocBytes > 0 {
			line += fmt.Sprintf("  %8s", fmtBytes(d.AllocBytes))
		}
		if len(d.Attrs) > 0 {
			parts := make([]string, len(d.Attrs))
			for i, a := range d.Attrs {
				parts[i] = a.Key + "=" + a.Value
			}
			line += "  {" + strings.Join(parts, " ") + "}"
		}
		b.WriteString(line)
		b.WriteByte('\n')
		for i, c := range d.Children {
			render(c, childPrefix, i == len(d.Children)-1, depth+1)
		}
	}
	render(s.Root, "", true, 0)
	if len(s.Counters) > 0 {
		b.WriteString("counters:\n")
		names := make([]string, 0, len(s.Counters))
		for n := range s.Counters {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "  %-40s %d\n", n, s.Counters[n])
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Publish registers the trace under name in the process-wide expvar
// registry, exporting a live Snapshot on every read (e.g. via the
// /debug/vars endpoint of a server embedding nexus). Publishing the same
// name twice keeps the first registration.
func Publish(name string, t *Trace) {
	if t == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return t.Snapshot() }))
}
