package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestBucketLayoutContiguousAndMonotonic(t *testing.T) {
	// Every bucket's upper bound must be >= its lower neighbour's, and
	// bucketIndex(bucketUpper(i)) must map back to i (the bound is the
	// largest value the bucket holds).
	prev := int64(-1)
	for i := 0; i < histBuckets; i++ {
		up := bucketUpper(i)
		if up <= prev {
			t.Fatalf("bucket %d upper %d not above previous %d", i, up, prev)
		}
		if got := bucketIndex(up); got != i {
			t.Fatalf("bucketIndex(bucketUpper(%d)=%d) = %d", i, up, got)
		}
		prev = up
	}
	// Probe values round-trip: a value lands in a bucket whose bound is
	// within 25% above it (the log-linear resolution guarantee).
	for _, v := range []int64{0, 1, 7, 8, 9, 100, 12345, 1e6, 1e9, 1e12, math.MaxInt64} {
		i := bucketIndex(v)
		up := bucketUpper(i)
		if up < v {
			t.Fatalf("value %d lands in bucket %d with upper %d < value", v, i, up)
		}
		if v >= 8 && float64(up) > 1.25*float64(v) {
			t.Fatalf("value %d bucket upper %d exceeds 25%% relative error", v, up)
		}
	}
	if got := bucketIndex(-5); got != 0 {
		t.Fatalf("bucketIndex(-5) = %d, want 0 (clamped)", got)
	}
	if bucketIndex(math.MaxInt64) >= histBuckets {
		t.Fatalf("bucketIndex(MaxInt64) = %d out of range %d", bucketIndex(math.MaxInt64), histBuckets)
	}
}

func TestHistogramRecordAndQuantile(t *testing.T) {
	r := NewRegistry(nil)
	h := r.Histogram("request_seconds", UnitSeconds)
	for i := 1; i <= 1000; i++ {
		h.Record(int64(i) * 1000) // 1µs .. 1ms
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	wantSum := int64(1000*1001/2) * 1000
	if s.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", s.Sum, wantSum)
	}
	// Quantile estimates are upper bounds within the 25% bucket resolution.
	for _, tc := range []struct {
		q    float64
		true int64
	}{{0.5, 500e3}, {0.99, 990e3}, {1, 1000e3}} {
		got := s.Quantile(tc.q)
		if got < tc.true || float64(got) > 1.25*float64(tc.true) {
			t.Fatalf("q%.2f = %d, want in [%d, %d]", tc.q, got, tc.true, int64(1.25*float64(tc.true)))
		}
	}
	if (HistSnapshot{}).Quantile(0.5) != 0 {
		t.Fatalf("quantile of empty snapshot should be 0")
	}
}

func TestHistogramConcurrentRecordStripes(t *testing.T) {
	r := NewRegistry(nil)
	h := r.Histogram("latency_seconds", UnitSeconds)
	const goroutines, per = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(int64(g*per + i))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*per)
	}
	var bucketTotal int64
	for _, b := range s.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, s.Count)
	}
}

func TestHistogramMerge(t *testing.T) {
	r := NewRegistry(nil)
	a := r.Histogram("a_seconds", UnitSeconds)
	b := r.Histogram("b_seconds", UnitSeconds)
	for i := 0; i < 100; i++ {
		a.Record(10)
		b.Record(1000)
	}
	a.Merge(b)
	s := a.Snapshot()
	if s.Count != 200 || s.Sum != 100*10+100*1000 {
		t.Fatalf("merged snapshot = count %d sum %d", s.Count, s.Sum)
	}
	// Merge is nil-safe in both directions.
	a.Merge(nil)
	(*Histogram)(nil).Merge(a)
}

func TestNilHistogramGaugeRegistryNoOp(t *testing.T) {
	var h *Histogram
	h.Record(5)
	h.RecordDuration(time.Second)
	h.RecordSince(time.Now())
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("nil histogram snapshot = %+v", s)
	}
	var g *Gauge
	g.Set(3)
	g.Inc()
	g.Dec()
	g.Add(7)
	if g.Get() != 0 {
		t.Fatalf("nil gauge Get = %d", g.Get())
	}
	var r *Registry
	if r.Histogram("x_seconds", UnitSeconds) != nil {
		t.Fatal("nil registry must hand out nil histograms")
	}
	if r.Gauge("x") != nil {
		t.Fatal("nil registry must hand out nil gauges")
	}
	r.SetGaugeFunc("x", func() int64 { return 1 })
	if r.Counters() != nil {
		t.Fatal("nil registry Counters must be nil")
	}
}

// TestRecordPathAllocationFree pins the acceptance criterion: the
// record path — enabled or disabled (nil) — performs zero allocations.
func TestRecordPathAllocationFree(t *testing.T) {
	r := NewRegistry(nil)
	h := r.Histogram("request_seconds", UnitSeconds)
	g := r.Gauge("queue_depth")
	var nilH *Histogram
	var nilG *Gauge
	allocs := testing.AllocsPerRun(500, func() {
		h.Record(12345)
		g.Add(1)
		g.Add(-1)
		nilH.Record(12345)
		nilG.Inc()
	})
	if allocs != 0 {
		t.Fatalf("record path allocated %v objects/op, want 0", allocs)
	}
}

func TestGaugeSetAddGet(t *testing.T) {
	r := NewRegistry(nil)
	g := r.Gauge("workers_busy")
	g.Set(5)
	g.Add(3)
	g.Dec()
	if got := g.Get(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	// Same name returns the same gauge; different labels a different one.
	if r.Gauge("workers_busy") != g {
		t.Fatal("same-name gauge not deduplicated")
	}
	if r.Gauge("workers_busy", "pool", "a") == g {
		t.Fatal("labelled gauge must be a distinct series")
	}
}
