package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	sp := tr.Start("x")
	if sp != nil {
		t.Fatalf("Start on nil trace returned %v, want nil", sp)
	}
	sp.SetStr("k", "v")
	sp.SetInt("n", 1)
	sp.SetFloat("f", 1.5)
	sp.End()
	tr.Add(CITests, 1)
	tr.AddSink(NewJSONLSink(&bytes.Buffer{}))
	if c := tr.Counters(); c != nil {
		t.Fatalf("Counters on nil trace = %v, want nil", c)
	}
	if got := tr.Counters().Get(CITests); got != 0 {
		t.Fatalf("Get on nil counters = %d, want 0", got)
	}
	snap := tr.Close()
	if snap.Root != nil || snap.TotalNS != 0 {
		t.Fatalf("Close on nil trace = %+v, want zero snapshot", snap)
	}
}

func TestNilPathAllocatesNothing(t *testing.T) {
	var tr *Trace
	allocs := testing.AllocsPerRun(200, func() {
		sp := tr.Start("phase")
		sp.End()
		tr.Add(PermutationsRun, 19)
		tr.Counters().Add(CITests, 1)
	})
	if allocs != 0 {
		t.Fatalf("nil-trace instrumentation allocated %v objects/op, want 0", allocs)
	}
}

func TestSpanNestingFollowsCallOrder(t *testing.T) {
	tr := New("root")
	a := tr.Start("a")
	a1 := tr.Start("a1")
	a1.End()
	a2 := tr.Start("a2")
	a2.End()
	a.End()
	b := tr.Start("b")
	b.End()
	snap := tr.Close()

	root := snap.Root
	if root == nil || root.Name != "root" {
		t.Fatalf("root = %+v", root)
	}
	if len(root.Children) != 2 || root.Children[0].Name != "a" || root.Children[1].Name != "b" {
		t.Fatalf("root children = %+v, want [a b]", root.Children)
	}
	ac := root.Children[0].Children
	if len(ac) != 2 || ac[0].Name != "a1" || ac[1].Name != "a2" {
		t.Fatalf("a children = %+v, want [a1 a2]", ac)
	}
	if snap.TotalNS <= 0 {
		t.Fatalf("TotalNS = %d, want > 0", snap.TotalNS)
	}
}

func TestCloseEndsOpenSpans(t *testing.T) {
	tr := New("root")
	tr.Start("left-open")
	snap := tr.Close()
	if snap.Root.DurNS < snap.Root.Children[0].DurNS {
		t.Fatalf("root %dns shorter than child %dns", snap.Root.DurNS, snap.Root.Children[0].DurNS)
	}
	// Double-close is a no-op returning a consistent snapshot.
	again := tr.Close()
	if again.Root == nil || again.Root.Name != "root" {
		t.Fatalf("second Close = %+v", again)
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(CITests, 1)
				c.Add(PermutationsRun, 2)
			}
		}()
	}
	wg.Wait()
	if got := c.Get(CITests); got != 8000 {
		t.Fatalf("ci_tests = %d, want 8000", got)
	}
	snap := c.Snapshot()
	if snap[PermutationsRun] != 16000 {
		t.Fatalf("permutations_run = %d, want 16000", snap[PermutationsRun])
	}
}

func TestSpanAttrsAndDuration(t *testing.T) {
	tr := New("root")
	sp := tr.Start("mcimr iteration 1")
	sp.SetStr("candidate", "HDI")
	sp.SetFloat("cmi", 0.0123)
	sp.SetInt("skips", 2)
	sp.End()
	if sp.Duration() <= 0 {
		t.Fatalf("Duration = %v, want > 0", sp.Duration())
	}
	snap := tr.Close()
	got := snap.Root.Children[0].Attrs
	want := []Attr{{"candidate", "HDI"}, {"cmi", "0.0123"}, {"skips", "2"}}
	if len(got) != len(want) {
		t.Fatalf("attrs = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("attr %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestJSONLSinkEmitsSpanAndCounterEvents(t *testing.T) {
	var buf bytes.Buffer
	tr := New("root")
	tr.AddSink(NewJSONLSink(&buf))
	sp := tr.Start("prepare")
	sp.SetInt("rows", 42)
	sp.End()
	tr.Add(CITests, 3)
	tr.Close()

	var events []Event
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	// prepare end, root end (via Close), counters.
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3: %+v", len(events), events)
	}
	if events[0].Type != "span" || events[0].Name != "prepare" || events[0].Path != "root/prepare" {
		t.Fatalf("first event = %+v", events[0])
	}
	if events[0].DurNS <= 0 {
		t.Fatalf("span event has DurNS %d, want > 0", events[0].DurNS)
	}
	last := events[len(events)-1]
	if last.Type != "counters" || last.Counters[CITests] != 3 {
		t.Fatalf("last event = %+v, want counters with ci_tests=3", last)
	}
}

func TestWriteTreeRendersPhasesAndCounters(t *testing.T) {
	tr := New("explain")
	p := tr.Start("prepare")
	tr.Start("execute-query").End()
	p.End()
	tr.Start("mcimr").End()
	tr.Add(CITests, 7)
	snap := tr.Close()

	var buf bytes.Buffer
	if err := snap.WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"explain", "├─ prepare", "└─ execute-query", "└─ mcimr", "counters:", "ci_tests"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tree output missing %q:\n%s", want, out)
		}
	}
}

func TestFlattenSumsRepeatedPaths(t *testing.T) {
	tr := New("root")
	for i := 0; i < 3; i++ {
		tr.Start("iter").End()
	}
	snap := tr.Close()
	flat := snap.Flatten()
	if flat["root"] != snap.TotalNS {
		t.Fatalf("flat[root] = %d, want %d", flat["root"], snap.TotalNS)
	}
	if flat["root/iter"] <= 0 {
		t.Fatalf("flat[root/iter] = %d, want > 0", flat["root/iter"])
	}
	if len(flat) != 2 {
		t.Fatalf("flat = %v, want 2 paths", flat)
	}
}

func TestPrunedAndHopCounterNames(t *testing.T) {
	if got := PrunedCounter("offline", "high-entropy"); got != "pruned.offline.high-entropy" {
		t.Fatalf("PrunedCounter = %q", got)
	}
	if got := HopCounter(2); got != "kg_attrs_hop2" {
		t.Fatalf("HopCounter = %q", got)
	}
}

func TestSnapshotJSONRoundTrips(t *testing.T) {
	tr := New("root")
	tr.Start("phase").End()
	tr.Add(KGAttrs, 5)
	snap := tr.Close()
	var back Snapshot
	if err := json.Unmarshal(snap.JSON(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "root" || back.Counters[KGAttrs] != 5 || back.Root.Children[0].Name != "phase" {
		t.Fatalf("round-tripped snapshot = %+v", back)
	}
}

func TestOutOfOrderEndTolerated(t *testing.T) {
	tr := New("root")
	a := tr.Start("a")
	b := tr.Start("b")
	a.End() // parent ended before child
	b.End() // must not panic; current pointer stays sane
	c := tr.Start("c")
	c.End()
	snap := tr.Close()
	if len(snap.Root.Children) < 2 {
		t.Fatalf("children = %+v", snap.Root.Children)
	}
}
