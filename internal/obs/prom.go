package obs

import (
	"fmt"
	"io"
	"runtime/metrics"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4), stdlib only. The
// naming conventions are applied mechanically so every series a registry
// renders passes the metric-name lint:
//
//   - every name is namespaced (`<ns>_...`) and sanitized to snake_case;
//   - counters get a `_total` suffix if the registered name lacks one
//     (obs counter names like "pruned.offline.high-entropy" become
//     `<ns>_pruned_offline_high_entropy_total`);
//   - UnitSeconds histograms are recorded in nanoseconds and exposed in
//     base-unit seconds (bucket bounds and `_sum` divided by 1e9);
//   - a handful of conventional unprefixed `go_*` runtime series
//     (goroutines, heap, GC) ride along.
//
// Histogram buckets are emitted cumulatively, one `le` per non-empty
// bucket plus `+Inf`, so output size tracks the spread of observed values
// rather than the 248-bucket layout.

// WritePrometheus renders the registry in Prometheus text format with
// every metric name prefixed by ns. Nil-safe (renders only runtime
// metrics).
func (r *Registry) WritePrometheus(w io.Writer, ns string) error {
	pw := &promWriter{w: w}
	if r != nil {
		r.writeCounters(pw, ns)
		r.writeGauges(pw, ns)
		r.writeHistograms(pw, ns)
	}
	writeRuntimeMetrics(pw)
	return pw.err
}

type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// SanitizeMetricName lowercases name and folds every character outside
// [a-z0-9_] to '_', yielding a valid snake_case Prometheus metric name.
func SanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '_':
			b.WriteRune(c)
		case c >= 'A' && c <= 'Z':
			b.WriteRune(c + ('a' - 'A'))
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func (r *Registry) writeCounters(pw *promWriter, ns string) {
	snap := r.counters.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		full := ns + "_" + SanitizeMetricName(n)
		if !strings.HasSuffix(full, "_total") {
			full += "_total"
		}
		pw.printf("# TYPE %s counter\n%s %d\n", full, full, snap[n])
	}
}

func (r *Registry) writeGauges(pw *promWriter, ns string) {
	prev := ""
	for _, g := range r.gaugeValues() {
		full := ns + "_" + SanitizeMetricName(g.name)
		if full != prev {
			pw.printf("# TYPE %s gauge\n", full)
			prev = full
		}
		pw.printf("%s%s %d\n", full, curly(g.labels), g.value)
	}
}

func (r *Registry) writeHistograms(pw *promWriter, ns string) {
	prev := ""
	for _, s := range r.histSnapshots() {
		full := ns + "_" + SanitizeMetricName(s.Name)
		if full != prev {
			pw.printf("# TYPE %s histogram\n", full)
			prev = full
		}
		var cum int64
		for _, b := range s.Buckets {
			cum += b.Count
			pw.printf("%s_bucket{%sle=%q} %d\n", full, labelPrefix(s.Labels), formatBound(b.Upper, s.Unit), cum)
		}
		pw.printf("%s_bucket{%sle=\"+Inf\"} %d\n", full, labelPrefix(s.Labels), s.Count)
		pw.printf("%s_sum%s %s\n", full, curly(s.Labels), formatSum(s.Sum, s.Unit))
		pw.printf("%s_count%s %d\n", full, curly(s.Labels), s.Count)
	}
}

// curly wraps a pre-rendered label string in braces ("" stays "").
func curly(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// labelPrefix renders labels for concatenation before the le label.
func labelPrefix(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

// formatBound renders a bucket's inclusive upper bound as an `le` value:
// seconds (from nanoseconds) for UnitSeconds, the raw integer otherwise.
func formatBound(upper int64, u Unit) string {
	if u == UnitSeconds {
		return strconv.FormatFloat(float64(upper)/1e9, 'g', -1, 64)
	}
	return strconv.FormatInt(upper, 10)
}

func formatSum(sum int64, u Unit) string {
	if u == UnitSeconds {
		return strconv.FormatFloat(float64(sum)/1e9, 'g', -1, 64)
	}
	return strconv.FormatInt(sum, 10)
}

// writeRuntimeMetrics emits the conventional go_* series every serving
// daemon should expose, read from runtime/metrics.
func writeRuntimeMetrics(pw *promWriter) {
	samples := []metrics.Sample{
		{Name: "/sched/goroutines:goroutines"},
		{Name: "/memory/classes/heap/objects:bytes"},
		{Name: "/gc/cycles/total:gc-cycles"},
	}
	metrics.Read(samples)
	val := func(i int) uint64 {
		if samples[i].Value.Kind() == metrics.KindUint64 {
			return samples[i].Value.Uint64()
		}
		return 0
	}
	pw.printf("# TYPE go_goroutines gauge\ngo_goroutines %d\n", val(0))
	pw.printf("# TYPE go_heap_objects_bytes gauge\ngo_heap_objects_bytes %d\n", val(1))
	pw.printf("# TYPE go_gc_cycles_total counter\ngo_gc_cycles_total %d\n", val(2))
}
