package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// SlowEntry is one captured slow request: identity, wall-clock cost, and
// (when the request ran under a traced pipeline) the full span event
// stream, i.e. exactly what a JSONL trace sink would have written.
type SlowEntry struct {
	// ID names the request (job id for nexusd, method+path for kgd).
	ID string `json:"id"`
	// Detail is free-form context — the SQL text, the endpoint, a status.
	Detail string `json:"detail,omitempty"`
	// Start is when the request began executing.
	Start time.Time `json:"start"`
	// DurNS is the end-to-end wall clock in nanoseconds.
	DurNS int64 `json:"dur_ns"`
	// Events is the request's span stream (empty when the request had no
	// trace attached).
	Events []Event `json:"events,omitempty"`
}

// SlowLog retains the N slowest requests that exceeded a threshold — a
// bounded min-heap, so a long-running daemon keeps the worst offenders
// and the memory bound no matter how much traffic passes. All methods are
// safe for concurrent use and no-ops on a nil receiver. Exposed at
// GET /debug/slow and dumped as JSONL on SIGQUIT by both daemons.
type SlowLog struct {
	mu        sync.Mutex
	threshold time.Duration
	keep      int
	heap      []SlowEntry // min-heap on DurNS: heap[0] is the fastest retained
	seen      int64       // qualifying entries offered so far
}

// NewSlowLog retains the keep slowest entries at or above threshold
// (keep <= 0 selects 32). A threshold <= 0 disables the log: NewSlowLog
// returns nil, and every method on a nil *SlowLog is a no-op.
func NewSlowLog(threshold time.Duration, keep int) *SlowLog {
	if threshold <= 0 {
		return nil
	}
	if keep <= 0 {
		keep = 32
	}
	return &SlowLog{threshold: threshold, keep: keep}
}

// Threshold returns the capture threshold (0 for a nil log).
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Record offers an entry and reports whether it was retained: entries
// under the threshold never are; past the retention bound the entry must
// be slower than the fastest retained one, which it then evicts.
func (l *SlowLog) Record(e SlowEntry) bool {
	if l == nil || time.Duration(e.DurNS) < l.threshold {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seen++
	if len(l.heap) < l.keep {
		l.heap = append(l.heap, e)
		l.siftUp(len(l.heap) - 1)
		return true
	}
	if e.DurNS <= l.heap[0].DurNS {
		return false
	}
	l.heap[0] = e
	l.siftDown(0)
	return true
}

func (l *SlowLog) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if l.heap[p].DurNS <= l.heap[i].DurNS {
			return
		}
		l.heap[p], l.heap[i] = l.heap[i], l.heap[p]
		i = p
	}
}

func (l *SlowLog) siftDown(i int) {
	for {
		min, left, right := i, 2*i+1, 2*i+2
		if left < len(l.heap) && l.heap[left].DurNS < l.heap[min].DurNS {
			min = left
		}
		if right < len(l.heap) && l.heap[right].DurNS < l.heap[min].DurNS {
			min = right
		}
		if min == i {
			return
		}
		l.heap[i], l.heap[min] = l.heap[min], l.heap[i]
		i = min
	}
}

// Snapshot returns the retained entries, slowest first. Nil-safe.
func (l *SlowLog) Snapshot() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := append([]SlowEntry(nil), l.heap...)
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].DurNS > out[j].DurNS })
	return out
}

// Seen returns how many qualifying (over-threshold) entries were offered,
// retained or not.
func (l *SlowLog) Seen() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seen
}

// WriteJSONL dumps the retained entries, slowest first, one JSON object
// per line — the SIGQUIT dump format, greppable and jq-able.
func (l *SlowLog) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range l.Snapshot() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// CaptureSink buffers a trace's span events in memory so a finished
// request's trace can be attached to a SlowEntry after the fact. The
// final counters event is skipped — a server's counter set is cumulative
// across requests and would only mislead inside a single request's
// capture. Safe for concurrent use.
type CaptureSink struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Sink.
func (s *CaptureSink) Emit(e Event) {
	if e.Type != "span" {
		return
	}
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// Events returns the captured span events in emission order.
func (s *CaptureSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}
