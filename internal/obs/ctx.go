package obs

import "context"

// Context plumbing for per-request traces. A session-level Trace assumes
// one Explain at a time (span nesting follows call order), so a server
// handling concurrent requests cannot set nexus.Options.Trace. Instead it
// builds one short-lived Trace per request — typically with
// NewWithCounters over the server's shared counter set plus a StageSink —
// and attaches it to the request context with WithTrace; the pipeline
// resolves its trace per call via TraceFrom, preferring the context's
// trace over the session's. Requests without a context trace keep the
// session-level behaviour, including the nil no-op path.

type traceCtxKey struct{}

// WithTrace returns a context carrying tr. A nil tr returns ctx unchanged.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, tr)
}

// TraceFrom returns the trace carried by ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return tr
}
