// Package kgremote implements kg.Source over the HTTP wire protocol of
// package kgwire, turning any kgd server into a drop-in knowledge-graph
// backend for extraction and NED.
//
// The client is built for the batched per-hop access pattern of
// internal/extract: requests arrive as large id batches, which the client
// splits into chunks of BatchSize and issues with at most MaxInflight
// in-flight HTTP requests. Per-item LRU caches (entities, full property
// maps, resolved surface forms) absorb repeat lookups across hops and
// across extractions; hits and misses are recorded on the obs counters
// kg_cache_hits / kg_cache_misses. Transient failures (HTTP 5xx, transport
// errors, timeouts) are retried with exponential backoff and jitter; 4xx
// responses are permanent and fail immediately.
package kgremote

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"nexus/internal/kg"
	"nexus/internal/kgwire"
	"nexus/internal/obs"
	"nexus/internal/stats"
)

// Options configures a Client. The zero value selects sane defaults.
type Options struct {
	// BatchSize caps the number of items per HTTP request; larger input
	// batches are split into concurrent chunk requests. Default 2048.
	BatchSize int
	// MaxInflight bounds the number of concurrent chunk requests.
	// Default 4.
	MaxInflight int
	// CacheSize is the capacity of each LRU cache (entities, property
	// maps, resolutions). Negative disables caching. Default 65536.
	CacheSize int
	// MaxRetries is the number of re-attempts after a retryable failure
	// (so MaxRetries+1 attempts total). Default 3.
	MaxRetries int
	// RetryBase is the first backoff delay; it doubles per attempt up to
	// RetryMax. The actual sleep is uniformly jittered over
	// [backoff/2, backoff]. Defaults 50ms / 2s.
	RetryBase time.Duration
	RetryMax  time.Duration
	// Timeout bounds each individual HTTP attempt. Default 10s.
	Timeout time.Duration
	// Seed seeds the jitter RNG, making retry schedules reproducible.
	// Default 1.
	Seed uint64
	// HTTPClient overrides the transport (tests). Default http.DefaultClient.
	HTTPClient *http.Client
	// Counters receives kg_cache_hits/kg_cache_misses/kg_http_requests/
	// kg_http_retries. Nil disables recording (obs no-op convention).
	Counters *obs.Counters
	// Registry, when non-nil, additionally records per-attempt HTTP latency
	// (kg_http_attempt_seconds) and the retries spent per logical request
	// (kg_http_request_retries, a histogram so retry storms are visible as
	// a distribution, not just a rate). Nil disables both (obs no-op
	// convention).
	Registry *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.BatchSize <= 0 {
		o.BatchSize = 2048
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 4
	}
	if o.CacheSize == 0 {
		o.CacheSize = 65536
	} else if o.CacheSize < 0 {
		o.CacheSize = 0
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	} else if o.MaxRetries == 0 {
		o.MaxRetries = 3
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 50 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 2 * time.Second
	}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.HTTPClient == nil {
		o.HTTPClient = http.DefaultClient
	}
	return o
}

// Client is an HTTP kg.Source. Safe for concurrent use.
type Client struct {
	base string
	opts Options

	mu  sync.Mutex // guards rng
	rng *stats.RNG

	ents    *lru[kg.EntityID, kg.Entity]
	props   *lru[kg.EntityID, kg.Props]
	resolve *lru[string, kg.Link]

	// Serving-metric instruments, nil (no-op) without Options.Registry.
	attemptSec *obs.Histogram // kg_http_attempt_seconds, per HTTP attempt
	reqRetries *obs.Histogram // kg_http_request_retries, per logical request
}

// Statically assert the Source contract.
var _ kg.Source = (*Client)(nil)

// New returns a client for the kgd server at baseURL (e.g.
// "http://localhost:7070").
func New(baseURL string, opts Options) *Client {
	opts = opts.withDefaults()
	return &Client{
		base:       strings.TrimRight(baseURL, "/"),
		opts:       opts,
		rng:        stats.NewRNG(opts.Seed),
		ents:       newLRU[kg.EntityID, kg.Entity](opts.CacheSize),
		props:      newLRU[kg.EntityID, kg.Props](opts.CacheSize),
		resolve:    newLRU[string, kg.Link](opts.CacheSize),
		attemptSec: opts.Registry.Histogram("kg_http_attempt_seconds", obs.UnitSeconds),
		reqRetries: opts.Registry.Histogram("kg_http_request_retries", obs.UnitNone),
	}
}

// permanentError marks a response that must not be retried (HTTP 4xx).
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// post issues one JSON request with retry/backoff, decoding the response
// into out.
func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("kgremote: encode %s: %w", path, err)
	}
	var lastErr error
	retries := 0
	defer func() { c.reqRetries.Record(int64(retries)) }()
	for attempt := 0; attempt <= c.opts.MaxRetries; attempt++ {
		if attempt > 0 {
			retries = attempt
			c.opts.Counters.Add(obs.KGHTTPRetries, 1)
			if err := c.backoff(ctx, attempt); err != nil {
				return fmt.Errorf("kgremote: %s: %w (last error: %v)", path, err, lastErr)
			}
		}
		c.opts.Counters.Add(obs.KGHTTPRequests, 1)
		lastErr = c.attempt(ctx, path, body, out)
		if lastErr == nil {
			return nil
		}
		if ctx.Err() != nil {
			return fmt.Errorf("kgremote: %s: %w", path, ctx.Err())
		}
		var perm *permanentError
		if errors.As(lastErr, &perm) {
			return fmt.Errorf("kgremote: %s: %w", path, perm.err)
		}
	}
	return fmt.Errorf("kgremote: %s: giving up after %d attempts: %w", path, c.opts.MaxRetries+1, lastErr)
}

func (c *Client) attempt(ctx context.Context, path string, body []byte, out any) error {
	defer c.attemptSec.RecordSince(time.Now())
	actx, cancel := context.WithTimeout(ctx, c.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.opts.HTTPClient.Do(req)
	if err != nil {
		return err // transport error: retryable
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		err := fmt.Errorf("server returned %s: %s", resp.Status, strings.TrimSpace(string(msg)))
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return &permanentError{err: err}
		}
		return err // 5xx: retryable
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return &permanentError{err: fmt.Errorf("decode response: %w", err)}
	}
	return nil
}

// backoff sleeps the jittered exponential delay for the given attempt
// (1-based), honoring context cancellation.
func (c *Client) backoff(ctx context.Context, attempt int) error {
	d := c.opts.RetryBase << (attempt - 1)
	if d > c.opts.RetryMax || d <= 0 {
		d = c.opts.RetryMax
	}
	c.mu.Lock()
	f := c.rng.Float64()
	c.mu.Unlock()
	// Uniform over [d/2, d]: keeps retries from synchronizing without
	// collapsing the delay to zero.
	d = d/2 + time.Duration(f*float64(d/2))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// forEachChunk runs fn over [0,n) in chunks of BatchSize with at most
// MaxInflight concurrent calls, returning the first error (and cancelling
// the rest).
func (c *Client) forEachChunk(ctx context.Context, n int, fn func(ctx context.Context, lo, hi int) error) error {
	if n == 0 {
		return nil
	}
	if n <= c.opts.BatchSize {
		return fn(ctx, 0, n)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sem := make(chan struct{}, c.opts.MaxInflight)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for lo := 0; lo < n; lo += c.opts.BatchSize {
		hi := lo + c.opts.BatchSize
		if hi > n {
			hi = n
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			wg.Wait()
			mu.Lock()
			defer mu.Unlock()
			if firstErr != nil {
				return firstErr
			}
			return ctx.Err()
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := fn(ctx, lo, hi); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				cancel()
			}
		}(lo, hi)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return firstErr
}

// Resolve implements kg.Source, serving repeat surface forms from the LRU.
func (c *Client) Resolve(ctx context.Context, values []string) ([]kg.Link, error) {
	out := make([]kg.Link, len(values))
	var missIdx []int
	for i, v := range values {
		if l, ok := c.resolve.get(v); ok {
			out[i] = l
			continue
		}
		missIdx = append(missIdx, i)
	}
	c.opts.Counters.Add(obs.KGCacheHits, int64(len(values)-len(missIdx)))
	c.opts.Counters.Add(obs.KGCacheMisses, int64(len(missIdx)))
	err := c.forEachChunk(ctx, len(missIdx), func(ctx context.Context, lo, hi int) error {
		req := kgwire.ResolveRequest{Values: make([]string, hi-lo)}
		for j, i := range missIdx[lo:hi] {
			req.Values[j] = values[i]
		}
		var resp kgwire.ResolveResponse
		if err := c.post(ctx, kgwire.PathResolve, req, &resp); err != nil {
			return err
		}
		if len(resp.Links) != hi-lo {
			return fmt.Errorf("kgremote: resolve returned %d links, want %d", len(resp.Links), hi-lo)
		}
		for j, i := range missIdx[lo:hi] {
			l := resp.Links[j].ToLink()
			out[i] = l
			c.resolve.put(values[i], l)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Entities implements kg.Source, serving repeat ids from the LRU.
func (c *Client) Entities(ctx context.Context, ids []kg.EntityID) ([]kg.Entity, error) {
	out := make([]kg.Entity, len(ids))
	var missIdx []int
	for i, id := range ids {
		if e, ok := c.ents.get(id); ok {
			out[i] = e
			continue
		}
		missIdx = append(missIdx, i)
	}
	c.opts.Counters.Add(obs.KGCacheHits, int64(len(ids)-len(missIdx)))
	c.opts.Counters.Add(obs.KGCacheMisses, int64(len(missIdx)))
	err := c.forEachChunk(ctx, len(missIdx), func(ctx context.Context, lo, hi int) error {
		req := kgwire.EntitiesRequest{IDs: make([]int32, hi-lo)}
		for j, i := range missIdx[lo:hi] {
			req.IDs[j] = int32(ids[i])
		}
		var resp kgwire.EntitiesResponse
		if err := c.post(ctx, kgwire.PathEntities, req, &resp); err != nil {
			return err
		}
		if len(resp.Entities) != hi-lo {
			return fmt.Errorf("kgremote: entities returned %d records, want %d", len(resp.Entities), hi-lo)
		}
		for j, i := range missIdx[lo:hi] {
			e := resp.Entities[j].ToEntity()
			out[i] = e
			c.ents.put(ids[i], e)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// GetProperties implements kg.Source. Full property maps (props == nil) are
// cached per entity; filtered requests are answered from cached full maps
// when possible and fetched (uncached) otherwise.
func (c *Client) GetProperties(ctx context.Context, ids []kg.EntityID, props []string) ([]kg.Props, error) {
	out := make([]kg.Props, len(ids))
	var missIdx []int
	for i, id := range ids {
		if full, ok := c.props.get(id); ok {
			if props == nil {
				out[i] = full
			} else {
				out[i] = filterProps(full, props)
			}
			continue
		}
		missIdx = append(missIdx, i)
	}
	c.opts.Counters.Add(obs.KGCacheHits, int64(len(ids)-len(missIdx)))
	c.opts.Counters.Add(obs.KGCacheMisses, int64(len(missIdx)))
	var wireProps []string
	if props != nil {
		wireProps = props
		if len(wireProps) == 0 {
			// Distinguish "no filter" (nil) from "empty filter" on the
			// wire: an empty filter yields empty maps locally.
			for i := range out {
				if out[i] == nil {
					out[i] = kg.Props{}
				}
			}
			return out, nil
		}
	}
	err := c.forEachChunk(ctx, len(missIdx), func(ctx context.Context, lo, hi int) error {
		req := kgwire.PropertiesRequest{IDs: make([]int32, hi-lo), Props: wireProps}
		for j, i := range missIdx[lo:hi] {
			req.IDs[j] = int32(ids[i])
		}
		var resp kgwire.PropertiesResponse
		if err := c.post(ctx, kgwire.PathProperties, req, &resp); err != nil {
			return err
		}
		if len(resp.Props) != hi-lo {
			return fmt.Errorf("kgremote: properties returned %d maps, want %d", len(resp.Props), hi-lo)
		}
		for j, i := range missIdx[lo:hi] {
			p, err := resp.Props[j].ToProps()
			if err != nil {
				return err
			}
			out[i] = p
			if props == nil {
				c.props.put(ids[i], p)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func filterProps(full kg.Props, props []string) kg.Props {
	out := make(kg.Props, len(props))
	for _, p := range props {
		if vs, ok := full[p]; ok {
			out[p] = vs
		}
	}
	return out
}

// ClassProps implements kg.Source. Class property universes are tiny and
// queried rarely, so they are not cached.
func (c *Client) ClassProps(ctx context.Context, class string) ([]string, error) {
	var resp kgwire.ClassPropsResponse
	if err := c.post(ctx, kgwire.PathClassProps, kgwire.ClassPropsRequest{Class: class}, &resp); err != nil {
		return nil, err
	}
	return resp.Props, nil
}

// Version implements kg.Versioned for the remote backend. The client
// cannot observe the server's graph content, so the version is the
// endpoint identity: repointing -kg at a different kgd (or regenerating
// the graph behind the same URL) should be paired with a report-cache
// invalidation or a URL change — docs/OPERATIONS.md covers the procedure.
func (c *Client) Version() string { return "remote:" + c.base }

// CacheLen reports the entries held by each LRU (entities, property maps,
// resolutions) — observability for tests and debugging.
func (c *Client) CacheLen() (ents, props, resolve int) {
	return c.ents.len(), c.props.len(), c.resolve.len()
}
