package kgremote

import (
	"container/list"
	"sync"
)

// lru is a small mutex-guarded LRU cache. A zero capacity disables it:
// every get misses and every put is dropped.
type lru[K comparable, V any] struct {
	mu  sync.Mutex
	cap int
	ll  *list.List
	m   map[K]*list.Element
}

type lruEntry[K comparable, V any] struct {
	key K
	val V
}

func newLRU[K comparable, V any](capacity int) *lru[K, V] {
	return &lru[K, V]{cap: capacity, ll: list.New(), m: make(map[K]*list.Element)}
}

func (c *lru[K, V]) get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*lruEntry[K, V]).val, true
	}
	var zero V
	return zero, false
}

func (c *lru[K, V]) put(key K, val V) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*lruEntry[K, V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&lruEntry[K, V]{key: key, val: val})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*lruEntry[K, V]).key)
	}
}

func (c *lru[K, V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
