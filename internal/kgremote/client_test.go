package kgremote

import (
	"context"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"nexus/internal/kg"
	"nexus/internal/kgserve"
	"nexus/internal/kgwire"
	"nexus/internal/obs"
)

func testGraph() *kg.Graph {
	g := kg.NewGraph()
	de := g.AddEntity("Germany", "Country")
	fr := g.AddEntity("France", "Country")
	eu := g.AddEntity("Euro", "Currency")
	g.Set(de, "HDI", kg.Num(0.94))
	g.Set(fr, "HDI", kg.Num(0.90))
	g.Set(de, "Currency", kg.Ent(eu))
	g.Set(fr, "Currency", kg.Ent(eu))
	g.Add(de, "Ethnic Group", kg.Str("a"))
	g.Add(de, "Ethnic Group", kg.Str("b"))
	return g
}

// serve starts an httptest server for g and returns a client over it.
func serve(t *testing.T, g *kg.Graph, scfg kgserve.Config, copts Options) (*Client, *kgserve.Server) {
	t.Helper()
	scfg.Source = g
	srv := kgserve.New(scfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	copts.HTTPClient = hs.Client()
	return New(hs.URL, copts), srv
}

// TestRoundTrip pins client-through-server results to the graph's own
// answers for every kg.Source method.
func TestRoundTrip(t *testing.T) {
	ctx := context.Background()
	g := testGraph()
	c, _ := serve(t, g, kgserve.Config{}, Options{})

	values := []string{"Germany", "france", "Narnia", ""}
	want, _ := g.Resolve(ctx, values)
	got, err := c.Resolve(ctx, values)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Resolve = %+v, want %+v", got, want)
	}

	ids := []kg.EntityID{2, 0, 1}
	wantE, _ := g.Entities(ctx, ids)
	gotE, err := c.Entities(ctx, ids)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotE, wantE) {
		t.Fatalf("Entities = %+v, want %+v", gotE, wantE)
	}

	wantP, _ := g.GetProperties(ctx, ids, nil)
	gotP, err := c.GetProperties(ctx, ids, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotP, wantP) {
		t.Fatalf("GetProperties = %+v, want %+v", gotP, wantP)
	}
	wantF, _ := g.GetProperties(ctx, ids, []string{"HDI"})
	gotF, err := c.GetProperties(ctx, ids, []string{"HDI"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotF, wantF) {
		t.Fatalf("filtered GetProperties = %+v, want %+v", gotF, wantF)
	}

	wantC, _ := g.ClassProps(ctx, "Country")
	gotC, err := c.ClassProps(ctx, "Country")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotC, wantC) {
		t.Fatalf("ClassProps = %v, want %v", gotC, wantC)
	}
}

// TestCacheServesRepeats asserts the second identical batch is served
// entirely from the LRU: no new HTTP requests, hits counted.
func TestCacheServesRepeats(t *testing.T) {
	ctx := context.Background()
	counters := obs.NewCounters()
	c, srv := serve(t, testGraph(), kgserve.Config{}, Options{Counters: counters})

	ids := []kg.EntityID{0, 1}
	if _, err := c.GetProperties(ctx, ids, nil); err != nil {
		t.Fatal(err)
	}
	reqs := srv.Requests(kgwire.PathProperties)
	if reqs == 0 {
		t.Fatal("first fetch issued no requests")
	}
	if _, err := c.GetProperties(ctx, ids, nil); err != nil {
		t.Fatal(err)
	}
	if got := srv.Requests(kgwire.PathProperties); got != reqs {
		t.Fatalf("cached fetch issued %d extra requests", got-reqs)
	}
	snap := counters.Snapshot()
	if snap[obs.KGCacheHits] != 2 || snap[obs.KGCacheMisses] != 2 {
		t.Fatalf("cache counters = hits %d misses %d, want 2/2", snap[obs.KGCacheHits], snap[obs.KGCacheMisses])
	}
	// Filtered requests are answered from the cached full maps too.
	f, err := c.GetProperties(ctx, []kg.EntityID{0}, []string{"HDI"})
	if err != nil {
		t.Fatal(err)
	}
	if len(f[0]) != 1 || f[0]["HDI"][0].Num != 0.94 {
		t.Fatalf("filtered-from-cache = %+v", f[0])
	}
	if got := srv.Requests(kgwire.PathProperties); got != reqs {
		t.Fatal("filtered request hit the network despite cached full map")
	}
}

// TestChunkedBatches asserts oversized batches split into ceil(n/BatchSize)
// requests, all of which succeed and reassemble in order.
func TestChunkedBatches(t *testing.T) {
	ctx := context.Background()
	g := kg.NewGraph()
	var ids []kg.EntityID
	for i := 0; i < 10; i++ {
		ids = append(ids, g.AddEntity(string(rune('a'+i)), "X"))
	}
	c, srv := serve(t, g, kgserve.Config{}, Options{BatchSize: 3, MaxInflight: 2})
	ents, err := c.Entities(ctx, ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range ents {
		if e.ID != ids[i] {
			t.Fatalf("ents[%d] = %+v", i, e)
		}
	}
	if got := srv.Requests(kgwire.PathEntities); got != 4 {
		t.Fatalf("issued %d requests for 10 ids at batch size 3, want 4", got)
	}
}

// TestRetryOn500 asserts injected server faults are retried to success and
// counted as retries.
func TestRetryOn500(t *testing.T) {
	ctx := context.Background()
	counters := obs.NewCounters()
	c, _ := serve(t, testGraph(),
		kgserve.Config{FailRate: 0.5, Seed: 7},
		Options{MaxRetries: 20, RetryBase: time.Millisecond, RetryMax: 5 * time.Millisecond, Counters: counters})
	links, err := c.Resolve(ctx, []string{"Germany"})
	if err != nil {
		t.Fatal(err)
	}
	if links[0].Outcome != kg.Linked {
		t.Fatalf("link = %+v", links[0])
	}
	snap := counters.Snapshot()
	if snap[obs.KGHTTPRequests] < 1 {
		t.Fatal("no requests counted")
	}
	if snap[obs.KGHTTPRequests] != snap[obs.KGHTTPRetries]+1 {
		t.Fatalf("requests %d, retries %d: want requests = retries+1",
			snap[obs.KGHTTPRequests], snap[obs.KGHTTPRetries])
	}
}

// TestBadRequestIsPermanent asserts 4xx responses fail immediately without
// burning retries.
func TestBadRequestIsPermanent(t *testing.T) {
	ctx := context.Background()
	counters := obs.NewCounters()
	c, _ := serve(t, testGraph(), kgserve.Config{}, Options{MaxRetries: 5, Counters: counters})
	_, err := c.Entities(ctx, []kg.EntityID{999})
	if err == nil {
		t.Fatal("expected error for unknown id")
	}
	if !strings.Contains(err.Error(), "unknown entity") {
		t.Fatalf("error = %v", err)
	}
	snap := counters.Snapshot()
	if snap[obs.KGHTTPRequests] != 1 || snap[obs.KGHTTPRetries] != 0 {
		t.Fatalf("4xx retried: requests %d retries %d", snap[obs.KGHTTPRequests], snap[obs.KGHTTPRetries])
	}
}

// TestGivesUpAfterRetries asserts a persistently failing server surfaces
// the last error after MaxRetries+1 attempts.
func TestGivesUpAfterRetries(t *testing.T) {
	ctx := context.Background()
	counters := obs.NewCounters()
	c, _ := serve(t, testGraph(),
		kgserve.Config{FailRate: 0.999999, Seed: 3},
		Options{MaxRetries: 2, RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond, Counters: counters})
	_, err := c.Resolve(ctx, []string{"Germany"})
	if err == nil {
		t.Fatal("expected failure")
	}
	if !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("error = %v", err)
	}
	if snap := counters.Snapshot(); snap[obs.KGHTTPRequests] != 3 {
		t.Fatalf("attempts = %d, want 3", snap[obs.KGHTTPRequests])
	}
}

// TestContextCancelStopsRetries asserts cancellation cuts the retry loop
// short.
func TestContextCancelStopsRetries(t *testing.T) {
	c, _ := serve(t, testGraph(),
		kgserve.Config{FailRate: 0.999999, Seed: 3},
		Options{MaxRetries: 1000, RetryBase: 50 * time.Millisecond, RetryMax: time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Resolve(ctx, []string{"Germany"})
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not stop the retry loop")
	}
}

// TestLRUEviction pins the cache's bounded size and recency order.
func TestLRUEviction(t *testing.T) {
	c := newLRU[int, string](2)
	c.put(1, "a")
	c.put(2, "b")
	c.get(1) // refresh 1 → 2 is now oldest
	c.put(3, "c")
	if _, ok := c.get(2); ok {
		t.Fatal("least recently used entry survived")
	}
	if v, ok := c.get(1); !ok || v != "a" {
		t.Fatal("recently used entry evicted")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}
	// Zero capacity disables caching entirely.
	z := newLRU[int, string](0)
	z.put(1, "a")
	if _, ok := z.get(1); ok || z.len() != 0 {
		t.Fatal("zero-capacity cache stored an entry")
	}
}
