// Package httpdebug is the serving-side glue between package obs and
// net/http, shared by nexusd and kgd: a request-latency middleware, the
// GET /metrics Prometheus exposition handler, the GET /debug/slow
// slow-request report, an opt-in debug mux bundling net/http/pprof with
// both, and the SIGQUIT slow-log dump. It exists so package obs itself
// never imports net/http — the metric types stay usable from the core
// pipeline and the benchmarks without dragging in a server stack.
package httpdebug

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nexus/internal/obs"
)

// Outcome classes of the request-latency histogram's "outcome" label: one
// per status family rather than one per status code, so cardinality stays
// fixed no matter what a handler returns.
const (
	OutcomeOK          = "ok"           // 1xx-3xx
	OutcomeClientError = "client_error" // 4xx
	OutcomeServerError = "server_error" // 5xx
)

func outcomeClass(status int) string {
	switch {
	case status >= 500:
		return OutcomeServerError
	case status >= 400:
		return OutcomeClientError
	default:
		return OutcomeOK
	}
}

// statusWriter captures the status code a handler wrote so the middleware
// can label the latency sample by outcome. A handler that never calls
// WriteHeader implicitly wrote 200.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Instrument wraps h so every request records its end-to-end latency into
// reg's hist histogram (UnitSeconds) labelled {route=route, outcome=...}.
// The three outcome series are created up front, so the per-request path
// never takes the registry lock — one small map lookup plus one
// allocation-free Record. A nil registry returns h unchanged.
func Instrument(reg *obs.Registry, hist, route string, h http.Handler) http.Handler {
	if reg == nil {
		return h
	}
	outcomes := map[string]*obs.Histogram{}
	for _, o := range []string{OutcomeOK, OutcomeClientError, OutcomeServerError} {
		outcomes[o] = reg.Histogram(hist, obs.UnitSeconds, "route", route, "outcome", o)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		outcomes[outcomeClass(status)].RecordSince(start)
	})
}

// MetricsHandler serves reg in Prometheus text format with every metric
// name prefixed by ns — GET /metrics for either daemon.
func MetricsHandler(reg *obs.Registry, ns string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w, ns)
	})
}

// slowReport is the JSON shape of GET /debug/slow.
type slowReport struct {
	Enabled     bool    `json:"enabled"`
	ThresholdMS float64 `json:"threshold_ms,omitempty"`
	// Seen counts every over-threshold request observed, retained or not.
	Seen    int64           `json:"seen"`
	Entries []obs.SlowEntry `json:"entries"`
}

// SlowHandler reports the retained slow-request captures, slowest first.
// A nil log (capture disabled) reports enabled=false and no entries.
func SlowHandler(l *obs.SlowLog) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rep := slowReport{
			Enabled:     l != nil,
			ThresholdMS: float64(l.Threshold()) / float64(time.Millisecond),
			Seen:        l.Seen(),
			Entries:     l.Snapshot(),
		}
		if rep.Entries == nil {
			rep.Entries = []obs.SlowEntry{}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	})
}

// Mux bundles the operator-facing debug surface served on the opt-in
// -debug-addr listener: net/http/pprof under /debug/pprof/, the metrics
// exposition under /metrics and the slow-request report under
// /debug/slow. pprof stays off the public mux on purpose — profiles can
// stall the process and leak internals, so they bind to a separate
// (typically loopback) address.
func Mux(reg *obs.Registry, ns string, slow *obs.SlowLog) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", MetricsHandler(reg, ns))
	mux.Handle("/debug/slow", SlowHandler(slow))
	return mux
}

// DumpSlowOnSIGQUIT installs a SIGQUIT handler that writes the slow log
// as JSONL to w (conventionally stderr) each time the signal arrives —
// kill -QUIT is the operator's "what has been slow?" without scraping.
// The process keeps running afterwards. Returns a stop function that
// uninstalls the handler. A nil log installs nothing.
func DumpSlowOnSIGQUIT(l *obs.SlowLog, w io.Writer) (stop func()) {
	if l == nil {
		return func() {}
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-ch:
				l.WriteJSONL(w)
			case <-done:
				return
			}
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}
