package nexus_test

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"net/http/httptest"

	"nexus/internal/kg"
	"nexus/internal/kgremote"
	"nexus/internal/kgserve"
	"nexus/internal/obs"
)

// benchKGBackend is one backend's record in BENCH_kg.json.
type benchKGBackend struct {
	PrepareNS    int64 `json:"prepare_ns"`
	HTTPRequests int64 `json:"http_requests,omitempty"`
	CacheHits    int64 `json:"cache_hits,omitempty"`
	CacheMisses  int64 `json:"cache_misses,omitempty"`
}

// benchKGEntry is the whole BENCH_kg.json document.
type benchKGEntry struct {
	Query         string         `json:"query"`
	Rows          int            `json:"rows"`
	Hops          int            `json:"hops"`
	InMemory      benchKGBackend `json:"in_memory"`
	RemoteBatched benchKGBackend `json:"remote_batched"`
	RemoteNaive   benchKGBackend `json:"remote_naive"`
}

// TestBenchKGJSON profiles the flights extraction against the three KG
// backends — in-process graph, remote with per-hop batching, and remote
// with batching and caching disabled (one request per item, the naive
// pointer-chasing shape) — and writes the comparison to BENCH_kg.json.
// Like TestBenchObsJSON, it is a machine-readable profile for tracking the
// performance shape across commits, not a pass/fail benchmark; the one
// hard assertion is the batching ratio, which is the point of the design.
func TestBenchKGJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping profile emission in -short mode")
	}
	w := integrationWorld()
	prepare := func(src kg.Source) (time.Duration, int) {
		sess := flightsSession(w, src, nil)
		start := time.Now()
		a, err := sess.Prepare(flightsQuery)
		if err != nil {
			t.Fatal(err)
		}
		return time.Since(start), a.View.NumRows()
	}

	entry := benchKGEntry{Query: flightsQuery, Hops: 1}
	d, rows := prepare(w.Graph)
	entry.InMemory = benchKGBackend{PrepareNS: d.Nanoseconds()}
	entry.Rows = rows

	remote := func(copts kgremote.Options) benchKGBackend {
		srv := kgserve.New(kgserve.Config{Source: w.Graph})
		hs := httptest.NewServer(srv.Handler())
		defer hs.Close()
		counters := obs.NewCounters()
		copts.HTTPClient = hs.Client()
		copts.Counters = counters
		d, _ := prepare(kgremote.New(hs.URL, copts))
		return benchKGBackend{
			PrepareNS:    d.Nanoseconds(),
			HTTPRequests: counters.Get(obs.KGHTTPRequests),
			CacheHits:    counters.Get(obs.KGCacheHits),
			CacheMisses:  counters.Get(obs.KGCacheMisses),
		}
	}
	entry.RemoteBatched = remote(kgremote.Options{})
	entry.RemoteNaive = remote(kgremote.Options{BatchSize: 1, MaxInflight: 8, CacheSize: -1})

	buf, err := json.MarshalIndent(entry, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_kg.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	// The design claim: batching collapses per-item requests into per-hop
	// requests. Anything under a 10× reduction means batching regressed.
	if entry.RemoteNaive.HTTPRequests < 10*entry.RemoteBatched.HTTPRequests {
		t.Errorf("naive backend used %d requests vs %d batched — batching regressed",
			entry.RemoteNaive.HTTPRequests, entry.RemoteBatched.HTTPRequests)
	}
	t.Logf("requests: batched %d, naive %d; prepare: in-memory %v, batched %v, naive %v",
		entry.RemoteBatched.HTTPRequests, entry.RemoteNaive.HTTPRequests,
		time.Duration(entry.InMemory.PrepareNS), time.Duration(entry.RemoteBatched.PrepareNS),
		time.Duration(entry.RemoteNaive.PrepareNS))
}
