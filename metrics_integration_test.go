package nexus_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"nexus"
	"nexus/internal/kgremote"
	"nexus/internal/kgserve"
	"nexus/internal/obs"
	"nexus/internal/server"
	"nexus/internal/workload"
)

// TestMetricsExposition is the serving-metrics smoke test: boot the full
// two-daemon topology (nexusd explaining through a kgremote client against
// a kgd server), drive one real explanation, then scrape GET /metrics on
// both daemons and check (a) the exposition is well-formed Prometheus text
// format, (b) every metric name passes the naming lint, and (c) the
// headline series of this subsystem are present with traffic in them.
func TestMetricsExposition(t *testing.T) {
	world := integrationWorld()

	// kgd side: its own registry, slow capture on everything.
	kgSrv := kgserve.New(kgserve.Config{Source: world.Graph, SlowThreshold: time.Nanosecond})
	kgTS := httptest.NewServer(kgSrv.Handler())
	defer kgTS.Close()

	// nexusd side: one registry shared by the kg client, the session and
	// the server, mirroring cmd/nexusd.
	registry := obs.NewRegistry(nil)
	src := kgremote.New(kgTS.URL, kgremote.Options{Counters: registry.Counters(), Registry: registry})
	sess := nexus.NewSessionFromSource(src, &nexus.Options{
		Hops:         1,
		Metrics:      registry.Counters(),
		ExtractCache: nexus.NewExtractionCache(registry.Counters()),
	})
	ds, err := workload.ByName(world, "forbes", 400, 11)
	if err != nil {
		t.Fatal(err)
	}
	sess.RegisterTable(ds.Name, ds.Table, ds.LinkColumns...)
	sess.ExcludeCandidates(ds.Name, ds.ExcludeCandidates...)

	srv := server.New(server.Config{
		Session:       sess,
		Workers:       2,
		Metrics:       registry.Counters(),
		Registry:      registry,
		SlowThreshold: time.Nanosecond,
	})
	srv.Start()
	nexusTS := httptest.NewServer(srv.Handler())
	defer nexusTS.Close()

	resp, err := http.Post(nexusTS.URL+"/v1/explain", "application/json",
		strings.NewReader(`{"sql": "SELECT Category, avg(Pay) FROM Forbes GROUP BY Category", "subgroups": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain: status %d", resp.StatusCode)
	}

	nexusOut := scrape(t, nexusTS.URL+"/metrics")
	kgOut := scrape(t, kgTS.URL+"/metrics")
	validateExposition(t, "nexusd", nexusOut)
	validateExposition(t, "kgd", kgOut)

	// Headline series with real traffic: request latency by route/outcome,
	// queue/run split, per-stage pipeline timings and the kg client's
	// attempt histogram on nexusd; request latency and the in-flight gauge
	// on kgd.
	for _, want := range []string{
		`nexusd_http_request_seconds_count{route="explain",outcome="ok"} 1`,
		"nexusd_job_queue_wait_seconds_count 1",
		"nexusd_job_run_seconds_count 1",
		`nexusd_pipeline_stage_seconds_count{stage="kg_extract"} 1`,
		`nexusd_pipeline_stage_seconds_count{stage="mcimr"} 1`,
		`nexusd_pipeline_stage_seconds_count{stage="subgroup_search"} 1`,
	} {
		if !strings.Contains(nexusOut, want) {
			t.Errorf("nexusd /metrics missing %q", want)
		}
	}
	if !regexp.MustCompile(`nexusd_kg_http_attempt_seconds_count [1-9]`).MatchString(nexusOut) {
		t.Error("nexusd /metrics: kg_http_attempt_seconds saw no attempts")
	}
	if !regexp.MustCompile(`kgd_http_request_seconds_count\{route="resolve",outcome="ok"\} [1-9]`).MatchString(kgOut) {
		t.Error("kgd /metrics: no resolve traffic recorded")
	}
	// The scrape itself is in flight while the gauge is read, so it shows 1.
	if !strings.Contains(kgOut, "kgd_requests_in_flight 1") {
		t.Error("kgd /metrics missing requests_in_flight gauge")
	}
	if t.Failed() {
		t.Logf("nexusd exposition:\n%s", nexusOut)
		t.Logf("kgd exposition:\n%s", kgOut)
	}
}

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("%s: Content-Type = %q", url, ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

var (
	// Prometheus metric and label name grammar, restricted to the
	// snake_case subset this repo's lint mandates.
	snakeName = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
	// One sample line: name, optional {labels}, one float value.
	sampleLine = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)(\{[^}]*\})? (\S+)$`)
	labelPair  = regexp.MustCompile(`^[a-z][a-z0-9_]*="(?:[^"\\]|\\.)*"$`)
)

// validateExposition checks Prometheus text-format well-formedness plus
// the repo's metric-naming lint:
//
//   - every line is a TYPE comment or a parseable sample;
//   - names and label keys are snake_case, prefixed with ns_ or go_;
//   - every sample belongs to a previously TYPE-declared family, declared
//     exactly once;
//   - counter families end in _total; histogram families carrying
//     fractional (seconds) buckets end in _seconds;
//   - histogram buckets are cumulative with a trailing +Inf equal to the
//     family's _count sample.
func validateExposition(t *testing.T, ns, body string) {
	t.Helper()
	types := map[string]string{} // family → counter|gauge|histogram
	type histState struct {
		lastCum  int64
		inf      int64
		count    int64
		sawInf   bool
		sawCount bool
		fracLE   bool
	}
	hists := map[string]*histState{} // family+labels(minus le)
	histFrac := map[string]bool{}    // family → any fractional le seen

	lines := strings.Split(strings.TrimSuffix(body, "\n"), "\n")
	if len(lines) == 0 {
		t.Fatalf("%s: empty exposition", ns)
	}
	for _, line := range lines {
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Errorf("%s: malformed TYPE line %q", ns, line)
				continue
			}
			name, typ := fields[2], fields[3]
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Errorf("%s: unknown type %q in %q", ns, typ, line)
			}
			if _, dup := types[name]; dup {
				t.Errorf("%s: duplicate TYPE declaration for %s", ns, name)
			}
			types[name] = typ
			if !snakeName.MatchString(name) {
				t.Errorf("%s: metric name %q is not snake_case", ns, name)
			}
			if !strings.HasPrefix(name, ns+"_") && !strings.HasPrefix(name, "go_") {
				t.Errorf("%s: metric name %q lacks the %s_ namespace", ns, name, ns)
			}
			if typ == "counter" && !strings.HasSuffix(name, "_total") {
				t.Errorf("%s: counter %q does not end in _total", ns, name)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // HELP or other comments are legal
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("%s: unparseable sample line %q", ns, line)
			continue
		}
		name, labels, value := m[1], m[2], m[3]
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			t.Errorf("%s: sample %q has non-numeric value %q", ns, line, value)
		}
		// Resolve the family: histogram samples use _bucket/_sum/_count.
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && types[base] == "histogram" {
				family = base
				break
			}
		}
		typ, declared := types[family]
		if !declared {
			t.Errorf("%s: sample %q has no TYPE declaration", ns, line)
			continue
		}
		// Label well-formedness (and the le accounting for histograms).
		var le string
		if labels != "" {
			for _, p := range splitLabels(labels[1 : len(labels)-1]) {
				if !labelPair.MatchString(p) {
					t.Errorf("%s: malformed label %q in %q", ns, p, line)
					continue
				}
				if k, v, ok := strings.Cut(p, "="); ok && k == "le" {
					le = strings.Trim(v, `"`)
				}
			}
		}
		if typ != "histogram" {
			continue
		}
		key := family + "|" + stripLE(labels)
		st := hists[key]
		if st == nil {
			st = &histState{}
			hists[key] = st
		}
		v, _ := strconv.ParseInt(value, 10, 64)
		switch {
		case strings.HasSuffix(name, "_bucket"):
			if le == "" {
				t.Errorf("%s: bucket without le label: %q", ns, line)
			} else if le == "+Inf" {
				st.sawInf, st.inf = true, v
			} else {
				if f, err := strconv.ParseFloat(le, 64); err != nil {
					t.Errorf("%s: bad le %q in %q", ns, le, line)
				} else if f != float64(int64(f)) {
					histFrac[family] = true
				}
				if v < st.lastCum {
					t.Errorf("%s: non-cumulative buckets at %q", ns, line)
				}
				st.lastCum = v
			}
		case strings.HasSuffix(name, "_count"):
			st.sawCount, st.count = true, v
		}
	}
	for key, st := range hists {
		if !st.sawInf || !st.sawCount {
			t.Errorf("%s: histogram %s missing +Inf bucket or _count", ns, key)
			continue
		}
		if st.inf != st.count {
			t.Errorf("%s: histogram %s +Inf bucket %d != count %d", ns, key, st.inf, st.count)
		}
		if st.lastCum > st.inf {
			t.Errorf("%s: histogram %s has bucket beyond +Inf (%d > %d)", ns, key, st.lastCum, st.inf)
		}
	}
	// Timing histograms (fractional bucket bounds = seconds) must be named
	// *_seconds; count-valued histograms (retries) must not be.
	names := make([]string, 0, len(histFrac))
	for name := range histFrac {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !strings.HasSuffix(name, "_seconds") {
			t.Errorf("%s: timing histogram %q does not end in _seconds", ns, name)
		}
	}
}

// splitLabels splits `a="x",b="y"` on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// stripLE removes the le pair so all buckets of one series share a key.
func stripLE(labels string) string {
	if labels == "" {
		return ""
	}
	kept := make([]string, 0, 4)
	for _, p := range splitLabels(labels[1 : len(labels)-1]) {
		if !strings.HasPrefix(p, "le=") {
			kept = append(kept, p)
		}
	}
	return strings.Join(kept, ",")
}
