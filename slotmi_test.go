package nexus

import (
	"math"
	"testing"

	"nexus/internal/bins"
	"nexus/internal/infotheory"
	"nexus/internal/stats"
	"nexus/internal/table"
)

// TestSlotMIMatchesRowLevel checks the outcome×slot contingency shortcut
// against the generic row-level mutual information.
func TestSlotMIMatchesRowLevel(t *testing.T) {
	rng := stats.NewRNG(3)
	nSlots, rowsPer := 40, 25
	n := nSlots * rowsPer
	slotCodes := make([]int32, nSlots) // entity-level attribute codes
	for i := range slotCodes {
		if rng.Float64() < 0.2 {
			slotCodes[i] = bins.Missing
		} else {
			slotCodes[i] = int32(rng.Intn(4))
		}
	}
	oVals := make([]float64, n)
	rowSlot := make([]int32, n)
	for i := 0; i < n; i++ {
		rowSlot[i] = int32(i % nSlots)
		base := 0.0
		if c := slotCodes[rowSlot[i]]; c != bins.Missing {
			base = float64(c)
		}
		oVals[i] = base + rng.Norm()
	}
	o, err := bins.Encode(table.NewFloatColumn("O", oVals), bins.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	// Contingency (o code × slot).
	oSlot := make([][]float64, o.Card)
	for i := range oSlot {
		oSlot[i] = make([]float64, nSlots)
	}
	for i := 0; i < n; i++ {
		if o.Codes[i] != bins.Missing {
			oSlot[o.Codes[i]][rowSlot[i]]++
		}
	}
	fast := slotMI(oSlot, slotCodes, 4)

	// Row-level reference.
	rowCodes := make([]int32, n)
	for i := range rowCodes {
		rowCodes[i] = slotCodes[rowSlot[i]]
	}
	e := &bins.Encoded{Name: "E", Card: 4, Codes: rowCodes}
	slow := infotheory.MutualInfo(o, e, nil)
	if math.Abs(fast-slow) > 1e-9 {
		t.Fatalf("slotMI = %v, row-level MI = %v", fast, slow)
	}
}

func TestPermuteObservedPreservesPattern(t *testing.T) {
	codes := []int32{0, bins.Missing, 1, 2, bins.Missing, 0}
	out := permuteObserved(codes, stats.NewRNG(7))
	if out[1] != bins.Missing || out[4] != bins.Missing {
		t.Fatal("missing positions moved")
	}
	// Multiset of observed codes preserved.
	count := map[int32]int{}
	for i, c := range out {
		if c == bins.Missing {
			continue
		}
		count[c]++
		_ = i
	}
	if count[0] != 2 || count[1] != 1 || count[2] != 1 {
		t.Fatalf("observed multiset changed: %v", count)
	}
	// Input untouched.
	if codes[0] != 0 || codes[2] != 1 {
		t.Fatal("permuteObserved mutated input")
	}
}
