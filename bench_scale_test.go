package nexus_test

import (
	"encoding/json"
	"io"
	"os"
	"strconv"
	"testing"
	"time"

	"nexus"
	"nexus/internal/colstore"
	"nexus/internal/counting"
	"nexus/internal/kg"
	"nexus/internal/obs"
	"nexus/internal/workload"
)

// benchScaleEntry is the Flights record in BENCH_scale.json: the paper-scale
// data-engine profile. Wall-clock fields end in _ns (benchcmp's increase-only
// class); everything else is a deterministic counter for the seeded workload,
// so chunk geometry, dictionary sizes, memory proxies and counting effort are
// gated strictly across commits.
type benchScaleEntry struct {
	Rows      int64 `json:"rows"`
	IngestNS  int64 `json:"ingest_ns"`
	ExplainNS int64 `json:"explain_ns"`
	TotalNS   int64 `json:"total_ns"`
	// IngestChunks / DictEntries describe the chunk geometry and global
	// dictionaries of the columnar store for this input.
	IngestChunks int64 `json:"ingest_chunks"`
	DictEntries  int64 `json:"dict_entries"`
	// ChunkBytes is the resident-chunk-bytes gauge reading after ingest (the
	// peak-RSS proxy); SourceBytesEst is what the pre-colstore ReadAll
	// strategy would have held resident. Their ratio is the bounded-memory
	// claim, asserted below and gated by benchcmp.
	ChunkBytes     int64 `json:"chunk_bytes"`
	SourceBytesEst int64 `json:"source_bytes_est"`
	// ExplanationAttrs pins the explanation size: the scale path must find
	// the same structure the in-memory path does.
	ExplanationAttrs int64 `json:"explanation_attrs"`
	// Counters holds the ingest counters plus the counting-kernel pass
	// deltas attributable to the Explain run.
	Counters map[string]int64 `json:"counters"`
}

// TestBenchScaleJSON drives the paper-scale data engine end to end —
// streaming Flights generator → CSV → chunked columnar ingest → Drain →
// Explain — and writes BENCH_scale.json, gated by scripts/check_bench.sh.
//
// The committed baseline uses the CI-sized default of 200000 rows.
// NEXUS_SCALE_ROWS overrides the row count for local runs at other scales —
// the paper's full Flights size is NEXUS_SCALE_ROWS=5819079 (do not commit a
// baseline generated with an override).
func TestBenchScaleJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping scale profile in -short mode")
	}
	rows := 200000
	if s := os.Getenv("NEXUS_SCALE_ROWS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			t.Fatalf("bad NEXUS_SCALE_ROWS %q", s)
		}
		rows = v
	} else if raceEnabled {
		t.Skip("scale profile is wall-clock-gated; run without -race (or opt in with NEXUS_SCALE_ROWS)")
	}

	world := kg.NewWorld(kg.WorldConfig{Seed: 11})
	ingestCounters := obs.NewCounters()

	// Generator and ingester run as a producer/consumer pair over a pipe:
	// at no point do the raw CSV bytes or records exist in full.
	pr, pw := io.Pipe()
	go func() { pw.CloseWithError(workload.FlightsCSV(world, workload.Config{Rows: rows, Seed: 12}, pw)) }()
	ingestStart := time.Now()
	st, err := colstore.FromCSV(pr, colstore.Options{Counters: ingestCounters})
	if err != nil {
		t.Fatal(err)
	}
	ingestNS := time.Since(ingestStart).Nanoseconds()

	stats := st.Stats()
	if int(stats.Rows) != rows {
		t.Fatalf("ingested %d rows, want %d", stats.Rows, rows)
	}
	wantChunks := (rows + colstore.DefaultChunkRows - 1) / colstore.DefaultChunkRows
	if int(stats.Chunks) != wantChunks {
		t.Fatalf("sealed %d chunks, want %d", stats.Chunks, wantChunks)
	}
	// The bounded-memory acceptance bar: resident chunk bytes must stay well
	// below what materializing the records would cost.
	if stats.ChunkBytes*2 >= stats.SourceBytesEst {
		t.Fatalf("chunk bytes %d not well below materialized estimate %d", stats.ChunkBytes, stats.SourceBytesEst)
	}
	if got := colstore.ResidentBytes(); got < stats.ChunkBytes {
		t.Fatalf("process gauge %d below this table's %d", got, stats.ChunkBytes)
	}

	tbl, err := st.Drain()
	if err != nil {
		t.Fatal(err)
	}
	// Parallelism pinned to 1 so the counting-kernel deltas in the profile
	// are machine-independent — check_bench.sh compares counters strictly.
	sessOpts := nexus.Options{}
	sessOpts.Core.Parallelism = 1
	sess := nexus.NewSession(world.Graph, &sessOpts)
	sess.RegisterTable("Flights", tbl, workload.FlightsLinkColumns...)
	sess.ExcludeCandidates("Flights", workload.FlightsExcludeCandidates...)

	before := counting.Stats()
	explainStart := time.Now()
	rep, err := sess.Explain("SELECT Origin_city, avg(Departure_delay) FROM Flights GROUP BY Origin_city")
	if err != nil {
		t.Fatal(err)
	}
	explainNS := time.Since(explainStart).Nanoseconds()

	cmap := ingestCounters.Snapshot()
	counting.Stats().Delta(before).Each(func(name string, v int64) { cmap[name] = v })
	entry := benchScaleEntry{
		Rows:             stats.Rows,
		IngestNS:         ingestNS,
		ExplainNS:        explainNS,
		TotalNS:          ingestNS + explainNS,
		IngestChunks:     stats.Chunks,
		DictEntries:      stats.DictEntries,
		ChunkBytes:       stats.ChunkBytes,
		SourceBytesEst:   stats.SourceBytesEst,
		ExplanationAttrs: int64(len(rep.Explanation.Attrs)),
		Counters:         cmap,
	}

	if entry.Counters[obs.IngestRows] != int64(rows) {
		t.Fatalf("%s = %d, want %d", obs.IngestRows, entry.Counters[obs.IngestRows], rows)
	}
	if entry.Counters[obs.IngestChunks] == 0 || entry.Counters[obs.DictEntries] == 0 {
		t.Fatal("expected nonzero ingest_chunks and dict_entries counters")
	}
	if entry.Counters[obs.CountingDensePasses] == 0 {
		t.Fatalf("expected a nonzero %s delta from the explain run", obs.CountingDensePasses)
	}
	if entry.ExplanationAttrs == 0 {
		t.Fatal("scale explain found no explanation attributes")
	}

	// Only the unmodified CI-sized profile is comparable to the committed
	// baseline; override runs report but do not overwrite it.
	if os.Getenv("NEXUS_SCALE_ROWS") != "" && rows != 200000 {
		t.Logf("NEXUS_SCALE_ROWS=%d: ingest %v, explain %v, chunk bytes %d (est %d) — not writing BENCH_scale.json",
			rows, time.Duration(ingestNS), time.Duration(explainNS), stats.ChunkBytes, stats.SourceBytesEst)
		return
	}
	buf, err := json.MarshalIndent(map[string]benchScaleEntry{"flights": entry}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_scale.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
