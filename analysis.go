package nexus

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"nexus/internal/bins"
	"nexus/internal/core"
	"nexus/internal/extract"
	"nexus/internal/infotheory"
	"nexus/internal/missing"
	"nexus/internal/ned"
	"nexus/internal/obs"
	"nexus/internal/sqlx"
	"nexus/internal/stats"
	"nexus/internal/subgroups"
	"nexus/internal/table"
)

// Analysis is a prepared explanation problem: the executed query, its
// analysis view, the encoded exposure and outcome, and the full candidate
// set (input columns + extracted KG attributes with IPW wiring). The same
// Analysis can be fed to MESA and to every baseline, which is how the
// comparison harness keeps methods on identical inputs.
type Analysis struct {
	Query  *sqlx.Query
	Result *sqlx.Result
	// View is the context-filtered relation being explained.
	View *table.Table
	// T and O are the encoded exposure and outcome over View.
	T, O *bins.Encoded
	// Candidates is 𝒜 = ℰ ∪ 𝒯 \ {O, T}.
	Candidates []*core.Candidate
	// Extraction is the KG extraction over View (nil without a graph).
	Extraction *extract.Extraction
	// LinkStats records NED outcomes per link column.
	LinkStats map[string]ned.Stats

	session *Session
	binOpts bins.Options
	byName  map[string]*core.Candidate
	// metrics is the counter set every lazy pipeline stage (IPW detection,
	// permutation tests, encoding-cache hits) reports into. It is the
	// session trace's counter set when tracing is on, and a private set
	// otherwise — one storage, so NumBiased and the trace cannot disagree.
	metrics *obs.Counters
}

// adaptiveBins picks the discretization granularity from the view size:
// coarse bins keep the plug-in estimators and the permutation tests
// informative on small relations (Covid-19 has one row per country), while
// large relations support the full 8 bins.
// permuteObserved shuffles the non-missing codes among the non-missing
// positions, preserving the missingness pattern — the correct null model
// when missingness is value-dependent (a full shuffle would compare
// statistics computed over different complete-case subpopulations).
func permuteObserved(codes []int32, rng *stats.RNG) []int32 {
	out := make([]int32, len(codes))
	copy(out, codes)
	idx := make([]int, 0, len(codes))
	for i, c := range out {
		if c != bins.Missing {
			idx = append(idx, i)
		}
	}
	rng.Shuffle(len(idx), func(a, b int) {
		out[idx[a]], out[idx[b]] = out[idx[b]], out[idx[a]]
	})
	return out
}

func adaptiveBins(rows int) int {
	switch {
	case rows < 600:
		return 4
	case rows < 4000:
		return 6
	default:
		return 8
	}
}

// Prepare parses and executes sql, then assembles the explanation problem.
// It is PrepareCtx with a background context.
func (s *Session) Prepare(sql string) (*Analysis, error) {
	return s.PrepareCtx(context.Background(), sql)
}

// PrepareCtx parses and executes sql, then assembles the explanation
// problem, honouring ctx through every phase (query execution, encoding,
// KG extraction). On cancellation the returned error wraps ctx.Err().
func (s *Session) PrepareCtx(ctx context.Context, sql string) (*Analysis, error) {
	psp := s.traceFor(ctx).Start("parse")
	q, err := sqlx.Parse(sql)
	psp.End()
	if err != nil {
		return nil, err
	}
	return s.PrepareQueryCtx(ctx, q)
}

// PrepareQuery is Prepare for a pre-parsed query.
func (s *Session) PrepareQuery(q *sqlx.Query) (*Analysis, error) {
	return s.PrepareQueryCtx(context.Background(), q)
}

// PrepareQueryCtx is PrepareCtx for a pre-parsed query.
func (s *Session) PrepareQueryCtx(ctx context.Context, q *sqlx.Query) (*Analysis, error) {
	tr := s.traceFor(ctx)
	psp := tr.Start("prepare")
	defer psp.End()

	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("nexus: prepare: %w", err)
	}

	esp := tr.Start("execute-query")
	res, err := sqlx.Execute(q, s.catalog)
	if err != nil {
		esp.End()
		return nil, err
	}
	esp.SetInt("view-rows", int64(res.View.NumRows()))
	esp.End()
	a := &Analysis{
		Query:     q,
		Result:    res,
		View:      res.View,
		LinkStats: map[string]ned.Stats{},
		session:   s,
		binOpts:   s.opts.Bins,
		byName:    map[string]*core.Candidate{},
		metrics:   tr.Counters(),
	}
	if a.metrics == nil {
		a.metrics = s.opts.Metrics
	}
	if a.metrics == nil {
		a.metrics = obs.NewCounters()
	}
	if a.binOpts.Bins == 0 || s.opts.AutoBins {
		a.binOpts.Bins = adaptiveBins(res.View.NumRows())
	}

	// Encode exposure (possibly multiple grouping attributes) and outcome.
	csp := tr.Start("encode-exposure-outcome")
	parts := make([]*bins.Encoded, 0, len(res.Exposure))
	for _, g := range res.Exposure {
		e, err := bins.Encode(res.View.MustColumn(g), a.binOpts)
		if err != nil {
			csp.End()
			return nil, err
		}
		parts = append(parts, e)
	}
	a.T = core.CombineExposure(parts)
	a.O, err = bins.Encode(res.View.MustColumn(res.Outcome), a.binOpts)
	csp.End()
	if err != nil {
		return nil, err
	}

	// Input-table candidates: every view column except T, O and the WHERE
	// attributes (constants within the context).
	isp := tr.Start("input-candidates")
	exclude := append([]string{res.Outcome}, res.Exposure...)
	for _, c := range q.Where {
		exclude = append(exclude, c.Attr)
	}
	exclude = append(exclude, s.excludes[q.Table]...)
	inputCands, err := core.CandidatesFromTable(res.View, exclude, a.binOpts)
	if err != nil {
		isp.End()
		return nil, err
	}
	a.Candidates = append(a.Candidates, inputCands...)
	isp.SetInt("candidates", int64(len(inputCands)))
	isp.End()

	// KG candidates over the view. With an ExtractCache the whole NED +
	// graph-walk pass runs once per dataset context (singleflight); repeat
	// and concurrent requests share the cached Extraction, including its
	// per-attribute encoding caches.
	if s.src != nil {
		links := s.linkColumnsIn(q.Table, res.View)
		if len(links) > 0 {
			ksp := tr.Start("kg-extract")
			ex, hit, err := s.opts.ExtractCache.get(ctx, extractionKey(q, links, s.opts.Hops), func() (*extract.Extraction, error) {
				return extract.ExtractCtx(ctx, res.View, links, s.src, s.linker, extract.Options{
					Hops:      s.opts.Hops,
					OneToMany: s.opts.OneToMany,
					Trace:     tr,
				})
			})
			if err != nil {
				ksp.End()
				return nil, err
			}
			if hit {
				a.metrics.Add(obs.ExtractCacheHits, 1)
			}
			a.Extraction = ex
			for lc, st := range ex.LinkStats {
				a.LinkStats[lc] = st
			}
			for _, attr := range ex.Attrs {
				a.Candidates = append(a.Candidates, s.kgCandidate(a, attr))
			}
			ksp.SetInt("attributes", int64(len(ex.Attrs)))
			ksp.End()
		}
	}
	for _, c := range a.Candidates {
		a.byName[c.Name] = c
	}
	return a, nil
}

// linkColumnsIn returns the registered link columns still present in view.
func (s *Session) linkColumnsIn(tableName string, view *table.Table) []string {
	var out []string
	for _, lc := range s.links[tableName] {
		if view.HasColumn(lc) {
			out = append(out, lc)
		}
	}
	return out
}

// kgCandidate wraps an extracted attribute as a core.Candidate with lazy
// encoding and lazy IPW weights (selection-bias detection + logistic
// propensity fit at entity level, broadcast to rows).
func (s *Session) kgCandidate(a *Analysis, attr *extract.Attribute) *core.Candidate {
	c := &core.Candidate{
		Name:   attr.Name,
		Origin: core.OriginKG,
		Hops:   attr.Hops,
	}
	// Entity-level uniqueness statistics drive the high-entropy prune, but
	// only for categorical attributes: a continuous numeric attribute is
	// naturally unique per entity and becomes low-cardinality after
	// binning, whereas a near-unique string (wikiID, Leader) is an
	// identifier the paper prunes.
	if attr.Col.Typ == table.String {
		c.EntityCard = attr.Col.DistinctCount()
		c.EntityComplete = attr.Col.Len() - attr.Col.NullCount()
	}
	// Row-level encoding cache: pruning, MCIMR and the final ranking all
	// re-request the encoding; repeat calls are counted as cache hits.
	var encOnce sync.Once
	var encCached *bins.Encoded
	var encErr error
	c.Enc = func() (*bins.Encoded, error) {
		hit := true
		encOnce.Do(func() {
			hit = false
			encCached, encErr = attr.Encode(a.binOpts)
		})
		if hit {
			a.metrics.Add(obs.CacheHits, 1)
		}
		return encCached, encErr
	}

	// Permutation at entity granularity: shuffle the entity-level codes
	// across slots, then broadcast through the row→slot mapping. This is the
	// null model of the responsibility test for extracted attributes.
	c.Permute = func(rng *stats.RNG) (*bins.Encoded, error) {
		ent, err := attr.EntityEncode(a.binOpts)
		if err != nil {
			return nil, err
		}
		codes := permuteObserved(ent.Codes, rng)
		slots := attr.RowSlots()
		out := &bins.Encoded{Name: attr.Name, Card: ent.Card, Labels: ent.Labels, Codes: make([]int32, len(slots))}
		for i, sl := range slots {
			if sl < 0 {
				out.Codes[i] = bins.Missing
			} else {
				out.Codes[i] = codes[sl]
			}
		}
		return out, nil
	}

	// Fast marginal permutation test via an outcome×slot contingency
	// table: permuting an attribute at entity granularity only regroups
	// slot columns, so each permuted statistic costs O(#slots · |O|)
	// instead of O(#rows).
	var contOnce sync.Once
	var oSlot [][]float64 // [oCode][slot] counts over rows with both present
	c.FastMarginalPerm = func(o *bins.Encoded, b, allow int, seed uint64) (bool, bool) {
		ent, err := attr.EntityEncode(a.binOpts)
		if err != nil || ent.Card == 0 {
			return false, false
		}
		slots := attr.RowSlots()
		contOnce.Do(func() {
			oSlot = make([][]float64, o.Card)
			for i := range oSlot {
				oSlot[i] = make([]float64, attr.Col.Len())
			}
			for i, sl := range slots {
				oc := o.Codes[i]
				if sl < 0 || oc == bins.Missing {
					continue
				}
				oSlot[oc][sl]++
			}
		})
		a.metrics.Add(obs.CITests, 1)
		observed := slotMI(oSlot, ent.Codes, ent.Card)
		if observed <= 0 {
			return false, true
		}
		exceed := 0
		rng := stats.NewRNG(seed*0x9e3779b9 + hashString(attr.Name))
		ran := 0
		for t := 0; t < b; t++ {
			ran++
			perm := permuteObserved(ent.Codes, rng)
			if slotMI(oSlot, perm, ent.Card) >= observed {
				exceed++
				if exceed > allow {
					break
				}
			}
		}
		a.metrics.Add(obs.PermutationsRun, int64(ran))
		return exceed <= allow, true
	}

	if s.opts.DisableIPW {
		return c
	}
	var once sync.Once
	var weights []float64
	c.Weights = func(enc *bins.Encoded) []float64 {
		once.Do(func() { weights = s.ipwWeights(a, attr) })
		return weights
	}
	return c
}

// slotMI computes I(O; E) where E assigns entity slots to codes, from a
// precomputed outcome×slot contingency table.
func slotMI(oSlot [][]float64, slotCodes []int32, card int) float64 {
	cardO := len(oSlot)
	joint := make([]float64, cardO*card)
	eTot := make([]float64, card)
	oTot := make([]float64, cardO)
	total := 0.0
	for oc := 0; oc < cardO; oc++ {
		row := oSlot[oc]
		for sl, cnt := range row {
			if cnt == 0 {
				continue
			}
			ec := slotCodes[sl]
			if ec == bins.Missing {
				continue
			}
			joint[oc*card+int(ec)] += cnt
			eTot[ec] += cnt
			oTot[oc] += cnt
			total += cnt
		}
	}
	if total <= 0 {
		return 0
	}
	mi := 0.0
	for oc := 0; oc < cardO; oc++ {
		for ec := 0; ec < card; ec++ {
			pj := joint[oc*card+ec]
			if pj <= 0 {
				continue
			}
			mi += pj / total * math.Log2(total*pj/(oTot[oc]*eTot[ec]))
		}
	}
	if mi < 0 {
		mi = 0
	}
	return mi
}

func hashString(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// ipwWeights detects selection bias for one extracted attribute and, when
// found, returns row-level IPW weights (nil otherwise). Missingness of an
// extracted attribute is an entity-level event, so both the detection and
// the propensity model run at entity (slot) level and are broadcast through
// the row→slot mapping.
func (s *Session) ipwWeights(a *Analysis, attr *extract.Attribute) []float64 {
	slots := attr.RowSlots()
	nSlots := attr.Col.Len()
	if nSlots == 0 {
		return nil
	}
	// Slot-level mean outcome (the observed variable R_E may depend on).
	out := a.View.MustColumn(a.Result.Outcome)
	sum := make([]float64, nSlots)
	cnt := make([]float64, nSlots)
	for i, sl := range slots {
		if sl < 0 || out.IsNull(i) {
			continue
		}
		sum[sl] += out.Float(i)
		cnt[sl]++
	}
	meanO := make([]float64, nSlots)
	for i := range meanO {
		if cnt[i] > 0 {
			meanO[i] = sum[i] / cnt[i]
		} else {
			meanO[i] = math.NaN()
		}
	}
	meanOEnc, err := bins.Encode(table.NewFloatColumn("meanO", meanO), a.binOpts)
	if err != nil {
		return nil
	}
	entEnc, err := attr.EntityEncode(a.binOpts)
	if err != nil {
		return nil
	}
	rep := missing.DetectBiasCounted(entEnc, map[string]*bins.Encoded{"O": meanOEnc}, s.opts.BiasThreshold, a.metrics)
	if !rep.Biased {
		return nil
	}
	a.metrics.Add(obs.BiasedAttrs, 1)
	a.metrics.Add(obs.IPWFits, 1)
	slotW := missing.Weights(entEnc, meanO)
	w := make([]float64, len(slots))
	for i, sl := range slots {
		if sl >= 0 {
			w[i] = slotW[sl]
		}
	}
	return w
}

// NumBiased returns the number of KG attributes flagged with selection bias
// so far (detection is lazy; the count is complete after an Explain). The
// count is read from the same counter set a trace snapshots, so the two can
// never disagree.
func (a *Analysis) NumBiased() int { return int(a.metrics.Get(obs.BiasedAttrs)) }

// KGCandidate wraps an extracted attribute (typically a modified copy, e.g.
// with injected missingness) as a candidate with the session's usual lazy
// encoding and IPW wiring.
func (a *Analysis) KGCandidate(attr *extract.Attribute) *core.Candidate {
	return a.session.kgCandidate(a, attr)
}

// Candidate returns the named candidate, or nil.
func (a *Analysis) Candidate(name string) *core.Candidate { return a.byName[name] }

// Explain runs the full MESA pipeline on the prepared analysis. It is
// ExplainCtx with a background context.
func (a *Analysis) Explain() (*Report, error) {
	return a.ExplainCtx(context.Background())
}

// ExplainCtx runs the full MESA pipeline on the prepared analysis,
// honouring ctx through pruning, MCIMR and the permutation tests. On
// cancellation the returned error wraps ctx.Err().
func (a *Analysis) ExplainCtx(ctx context.Context) (*Report, error) {
	opts := a.session.opts.Core
	if opts.Trace == nil {
		opts.Trace = a.session.traceFor(ctx)
	}
	if opts.Scorer != nil && opts.ScoreTag == "" {
		// Qualify the fingerprints shipped to scoring workers with the same
		// dataset/KG identity the report cache keys on, so two sessions with
		// coincidentally equal encodings cannot alias on a shared fleet.
		opts.ScoreTag = a.session.DatasetFingerprint() + "|" + a.session.KGVersion()
	}
	ex, err := core.ExplainCtx(ctx, a.T, a.O, a.Candidates, opts)
	if err != nil {
		return nil, err
	}
	return &Report{Analysis: a, Explanation: ex}, nil
}

// Report is the result of explaining one query.
type Report struct {
	Analysis    *Analysis
	Explanation *core.Explanation
}

// Explain is the one-call entry point: parse, execute, prepare, explain.
// It is ExplainCtx with a background context.
func (s *Session) Explain(sql string) (*Report, error) {
	return s.ExplainCtx(context.Background(), sql)
}

// ExplainCtx is the one-call entry point honouring ctx: parse, execute,
// prepare (with cached KG extraction when Options.ExtractCache is set) and
// explain, with cooperative cancellation checkpoints throughout. This is
// what a server calls with a per-request context so deadlines, client
// disconnects and graceful shutdown actually stop work; on cancellation the
// returned error wraps ctx.Err().
func (s *Session) ExplainCtx(ctx context.Context, sql string) (*Report, error) {
	a, err := s.PrepareCtx(ctx, sql)
	if err != nil {
		return nil, err
	}
	return a.ExplainCtx(ctx)
}

// Summary renders a human-readable report.
func (r *Report) Summary() string {
	var b strings.Builder
	ex := r.Explanation
	fmt.Fprintf(&b, "query: %s\n", r.Analysis.Query.String())
	fmt.Fprintf(&b, "I(O;T|C) = %.4f bits (unexplained correlation)\n", ex.BaseScore)
	if len(ex.Attrs) == 0 {
		b.WriteString("no explanation found\n")
		return b.String()
	}
	fmt.Fprintf(&b, "explanation (I(O;T|C,E) = %.4f, %.1f%% explained):\n",
		ex.Score, 100*(1-safeRatio(ex.Score, ex.BaseScore)))
	for _, attr := range ex.Attrs {
		fmt.Fprintf(&b, "  %-40s origin=%-5s responsibility=%.2f\n", attr.Name, attr.Origin, attr.Responsibility)
	}
	fmt.Fprintf(&b, "candidates: %d (%d with selection bias, IPW applied)\n",
		len(r.Analysis.Candidates), r.Analysis.NumBiased())
	fmt.Fprintf(&b, "elapsed: %v\n", ex.Elapsed)
	return b.String()
}

// ExplainedFraction returns 1 - Score/BaseScore (clamped to [0,1]).
func (r *Report) ExplainedFraction() float64 {
	f := 1 - safeRatio(r.Explanation.Score, r.Explanation.BaseScore)
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Subgroups finds the top-k largest context refinements where the report's
// explanation fails (Algorithm 2). tau ≤ 0 selects the paper-style default
// of max(0.2, 2× the explanation score). It is SubgroupsCtx with a
// background context.
func (r *Report) Subgroups(k int, tau float64) ([]subgroups.Group, subgroups.Stats, error) {
	return r.SubgroupsCtx(context.Background(), k, tau)
}

// SubgroupsCtx is Subgroups honouring ctx: the lattice search checks for
// cancellation before scoring each batch. On cancellation the returned
// error wraps ctx.Err().
func (r *Report) SubgroupsCtx(ctx context.Context, k int, tau float64) ([]subgroups.Group, subgroups.Stats, error) {
	return r.SubgroupsWithOptions(ctx, subgroups.Options{K: k, Tau: tau})
}

// SubgroupsWithOptions is SubgroupsCtx with the full search configuration
// exposed — notably Parallelism, which the benchmarks sweep to compare the
// serial and batched lattice traversals on identical inputs (results are
// byte-identical at any setting; only wall clock and effort counters move).
// Zero fields select the session-level defaults SubgroupsCtx uses: the
// paper-style τ of max(0.2, 2× the explanation score), the session's
// Core.Parallelism, and the session's Trace/Metrics as counter sinks.
func (r *Report) SubgroupsWithOptions(ctx context.Context, opts subgroups.Options) ([]subgroups.Group, subgroups.Stats, error) {
	sess := r.Analysis.session
	if opts.Tau <= 0 {
		opts.Tau = 2 * r.Explanation.Score
		if opts.Tau < 0.2 {
			opts.Tau = 0.2
		}
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = sess.opts.Core.Parallelism
	}
	if opts.Trace == nil {
		opts.Trace = sess.traceFor(ctx)
	}
	if opts.Counters == nil {
		opts.Counters = sess.opts.Metrics
	}
	if opts.Scorer == nil {
		opts.Scorer = sess.opts.Core.Scorer
	}
	if opts.Scorer != nil && opts.ScoreTag == "" {
		opts.ScoreTag = sess.DatasetFingerprint() + "|" + sess.KGVersion()
	}
	encs, err := r.explanationEncodings()
	if err != nil {
		return nil, subgroups.Stats{}, err
	}
	attrs, err := r.Analysis.refinementAttrs()
	if err != nil {
		return nil, subgroups.Stats{}, err
	}
	return subgroups.TopUnexplainedCtx(ctx, r.Analysis.T, r.Analysis.O, encs, attrs, opts)
}

// ExplainSubgroup re-explains the query inside one unexplained subgroup —
// the paper's Example 4.5 workflow: after Algorithm 2 surfaces "Continent ==
// Europe", the analyst refines the context and obtains a different
// explanation for that group. Refinements over input-table columns become
// WHERE conjuncts on the original query; refinements over extracted
// attributes are not expressible in SQL over the input table and return an
// error. It is ExplainSubgroupCtx with a background context.
func (r *Report) ExplainSubgroup(g subgroups.Group) (*Report, error) {
	return r.ExplainSubgroupCtx(context.Background(), g)
}

// ExplainSubgroupCtx is ExplainSubgroup honouring ctx through the refined
// query's prepare and explain phases.
func (r *Report) ExplainSubgroupCtx(ctx context.Context, g subgroups.Group) (*Report, error) {
	q := *r.Analysis.Query
	q.Where = append([]sqlx.Condition(nil), q.Where...)
	for _, cond := range g.Conds {
		if !r.Analysis.View.HasColumn(cond.Attr) {
			return nil, fmt.Errorf("nexus: subgroup condition on extracted attribute %q cannot be refined in SQL", cond.Attr)
		}
		q.Where = append(q.Where, sqlx.Condition{Attr: cond.Attr, Op: sqlx.OpEq, IsStr: true, Str: cond.Value})
	}
	a, err := r.Analysis.session.PrepareQueryCtx(ctx, &q)
	if err != nil {
		return nil, err
	}
	return a.ExplainCtx(ctx)
}

// explanationEncodings re-derives the encodings of the selected attributes.
func (r *Report) explanationEncodings() ([]*bins.Encoded, error) {
	var out []*bins.Encoded
	for _, attr := range r.Explanation.Attrs {
		c := r.Analysis.Candidate(attr.Name)
		if c == nil {
			return nil, fmt.Errorf("nexus: selected attribute %q not among candidates", attr.Name)
		}
		e, err := c.Enc()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// refinementAttrs picks the categorical dimensions for subgroup discovery:
// input columns first, then low-cardinality KG attributes, capped for
// tractability.
func (a *Analysis) refinementAttrs() ([]subgroups.RefinementAttr, error) {
	const maxAttrs = 24
	var out []subgroups.RefinementAttr
	exclude := map[string]bool{a.Result.Outcome: true}
	for _, g := range a.Result.Exposure {
		exclude[g] = true
	}
	for _, col := range a.View.Columns() {
		if exclude[col.Name] || col.Typ != table.String {
			continue
		}
		e, err := bins.Encode(col, a.binOpts)
		if err != nil {
			return nil, err
		}
		if a.refinementEligible(e) {
			out = append(out, subgroups.RefinementAttr{Name: col.Name, Enc: e})
			if len(out) >= maxAttrs {
				return out, nil
			}
		}
	}
	if a.Extraction != nil {
		names := append([]string(nil), a.Extraction.Names()...)
		sort.Strings(names)
		for _, name := range names {
			attr := a.Extraction.Attr(name)
			if attr.Col.Typ != table.String {
				continue
			}
			e, err := attr.Encode(a.binOpts)
			if err != nil {
				return nil, err
			}
			if e.MissingFraction() > 0.5 || !a.refinementEligible(e) {
				continue
			}
			out = append(out, subgroups.RefinementAttr{Name: name, Enc: e})
			if len(out) >= maxAttrs {
				break
			}
		}
	}
	return out, nil
}

// refinementEligible admits a categorical attribute as a subgroup dimension
// when it is either low-cardinality or has at least one value covering ≥5%
// of the rows (so high-cardinality attributes with a dominant shared value,
// like Currency == Euro, still produce large groups).
func (a *Analysis) refinementEligible(e *bins.Encoded) bool {
	if e.Card < 2 || e.Card > 256 {
		return false
	}
	if e.Card <= a.session.opts.MaxRefinementCard {
		return true
	}
	counts := make([]int, e.Card)
	for _, c := range e.Codes {
		if c != bins.Missing {
			counts[c]++
		}
	}
	top := 0
	for _, c := range counts {
		if c > top {
			top = c
		}
	}
	return float64(top) >= 0.05*float64(len(e.Codes))
}

// PartialCorrelations computes, for each named numeric attribute, the
// linear partial correlation between the outcome and that attribute
// controlling for the remaining named attributes — the regression-based
// alternative dependence measure the paper discusses in §2.2. It lets an
// analyst cross-check an information-theoretic explanation with a familiar
// linear statistic. Categorical attributes are skipped (reported as NaN).
func (a *Analysis) PartialCorrelations(names []string) (map[string]float64, error) {
	outcome := a.View.MustColumn(a.Result.Outcome).Floats()
	series := make(map[string][]float64, len(names))
	for _, n := range names {
		vals, ok := a.rawSeries(n)
		if !ok {
			series[n] = nil
			continue
		}
		series[n] = vals
	}
	out := make(map[string]float64, len(names))
	for _, n := range names {
		if series[n] == nil {
			out[n] = math.NaN()
			continue
		}
		var controls [][]float64
		for _, m := range names {
			if m != n && series[m] != nil {
				controls = append(controls, series[m])
			}
		}
		out[n] = stats.PartialCorr(outcome, series[n], controls...)
	}
	return out, nil
}

// rawSeries returns the raw numeric values of a named candidate attribute
// over the view (false for categorical or unknown attributes).
func (a *Analysis) rawSeries(name string) ([]float64, bool) {
	if col := a.View.Column(name); col != nil {
		if col.Typ == table.Float || col.Typ == table.Int {
			return col.Floats(), true
		}
		return nil, false
	}
	if a.Extraction != nil {
		if attr := a.Extraction.Attr(name); attr != nil {
			if attr.Col.Typ == table.Float || attr.Col.Typ == table.Int {
				return attr.Materialize().Floats(), true
			}
		}
	}
	return nil, false
}

// Responsibility re-ranks an explicit attribute set by Def. 2.5 and returns
// name → responsibility. It lets analysts probe sets beyond the one MCIMR
// selected.
func (a *Analysis) Responsibility(names []string) (map[string]float64, error) {
	encs := make([]*bins.Encoded, len(names))
	for i, n := range names {
		c := a.Candidate(n)
		if c == nil {
			return nil, fmt.Errorf("nexus: unknown attribute %q", n)
		}
		e, err := c.Enc()
		if err != nil {
			return nil, err
		}
		encs[i] = e
	}
	full := infotheory.CondMutualInfo(a.O, a.T, encs, nil)
	out := make(map[string]float64, len(names))
	if len(names) == 1 {
		out[names[0]] = 1
		return out, nil
	}
	var denom float64
	drops := make([]float64, len(names))
	for i := range names {
		without := make([]*bins.Encoded, 0, len(encs)-1)
		for j, e := range encs {
			if j != i {
				without = append(without, e)
			}
		}
		drops[i] = infotheory.CondMutualInfo(a.O, a.T, without, nil) - full
		denom += drops[i]
	}
	for i, n := range names {
		if denom != 0 {
			out[n] = drops[i] / denom
		}
	}
	return out, nil
}
