//go:build race

package nexus_test

// raceEnabled lets the scale profile skip itself under the race detector
// (where its wall-clock numbers are meaningless) unless NEXUS_SCALE_ROWS
// explicitly opts in.
const raceEnabled = true
